// Shared benchmark harness: common CLI handling, the Optane-like latency
// model setup, the YCSB-style warm-up/measure insert driver (paper §4.1),
// and a type-erased store wrapper so every bench drives all six systems
// (CSR, DGAP, BAL, LLAMA, GraphOne-FD, XPGraph) through identical code.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <ostream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "src/algorithms/graph_view.hpp"
#include "src/baselines/pmem_csr.hpp"
#include "src/common/cli.hpp"
#include "src/common/table.hpp"
#include "src/common/timer.hpp"
#include "src/core/dgap_store.hpp"
#include "src/core/options.hpp"
#include "src/graph/edge_stream.hpp"
#include "src/graph/types.hpp"
#include "src/ingest/async_ingestor.hpp"
#include "src/obs/sampler.hpp"
#include "src/pmem/pool.hpp"
#include "src/sched/parallel.hpp"

namespace dgap::bench {

// DGAP-specific store tuning surfaced on the bench CLIs (--ingest-profile,
// --section-slots, --dram-cache, --eviction). Baseline systems ignore it.
struct StoreTuning {
  core::IngestProfile profile = core::IngestProfile::balanced;
  std::uint64_t section_slots = 0;  // explicit hint; 0 = profile default
  // DRAM hot tier over the pmem edge array (src/tier/): 0 disables.
  std::uint32_t dram_cache_mb = 0;
  tier::Eviction eviction = tier::Eviction::lru;
  // SSD cold tier below the pmem pool (src/tier/cold_tier.*): with
  // --cold-tier on, --pool-mb becomes the PHYSICAL pmem budget — the pool
  // is created with kColdVirtualFactor x the virtual span and the tier
  // demotes cold sections to the backing file to keep residency within
  // budget, so graphs larger than --pool-mb stay serveable.
  bool cold_tier = false;
  std::string cold_file;  // backing file; empty = unlinked temp file
  std::uint32_t uring_depth = 64;
  bool cold_pread = false;  // force the pread/pwrite fallback transport
};

// Virtual-over-physical headroom for --cold-tier pools: the address span
// is this factor larger than --pool-mb, the cold tier keeps the RESIDENT
// bytes within --pool-mb.
inline constexpr std::uint64_t kColdVirtualFactor = 16;

struct BenchConfig {
  double scale = 1.0;  // dataset scale multiplier (see datasets.hpp)
  std::vector<std::string> datasets;
  bool latency = true;  // inject Optane-like delays
  std::uint64_t pool_mb = 1024;
  std::string only_system;  // run a single system when non-empty
  // Ingestion batch sizes to sweep; 1 = the per-edge path.
  std::vector<std::size_t> batches = {1};
  // Async-ingestion absorber-thread counts to sweep (--async-writers=a,b);
  // empty = no async sweep.
  std::vector<int> async_writers;
  // Shard counts for the sharded-DGAP sweep (--shards=1,2,4); empty = no
  // sharded runs. Sharded sweeps always measure S=1 too for the speedup
  // baseline.
  std::vector<int> shards;
  // DGAP section-geometry tuning (--ingest-profile / --section-slots).
  StoreTuning tuning;
  // Async absorb tuning: --autotune turns on arrival-rate absorb
  // autotuning; --absorb-min=N hand-tunes a fixed gather threshold
  // (ignored while autotune is on — the comparison the autotuner must win).
  bool autotune = false;
  std::size_t absorb_min = 0;
  // --csr-cache: add the SnapshotCsrCache section (fig7/fig8) — run each
  // kernel over the raw snapshot AND over the cached CSR materialization of
  // the SAME cut, verify identical results, report the speedup.
  bool csr_cache = false;
  // --live-ingest: add the analysis-while-ingesting section (fig7/table4) —
  // async producers flood the store while the analysis thread snapshots and
  // runs PageRank; both sides' throughput is reported. --live-producers=N
  // sets the submit-thread count.
  bool live_ingest = false;
  int live_producers = 2;
  // --incremental (requires --live-ingest): switch the live-ingest section
  // to the round-over-round delta-analytics driver — each analysis round
  // diffs the new cut against the previous one (snapshot_delta) and runs
  // the delta-seeded PR/CC kernels next to the full recomputes, verifying
  // them every round. --live-pace-ns=N throttles each producer between
  // 512-edge chunks so trickle-rate streams (small per-round deltas) can
  // be dialed in; 0 floods.
  bool incremental = false;
  std::uint64_t live_pace_ns = 0;
  // --pm-read-ns=N: per-cache-line read charge applied INSIDE the
  // --dram-cache section only (fig7/fig8), so cache-off vs cache-on runs
  // both pay the media's read cost and the tier's win is visible. The main
  // tables never charge reads (read_ns_per_line stays 0 there).
  std::uint64_t pm_read_ns = 60;
  // Observability exporters (src/obs): --metrics-out=FILE streams registry
  // samples as JSON-lines every --metrics-interval-ms (plus a Prometheus
  // text dump to FILE.prom at exit); --trace-out=FILE enables the
  // structural trace ring and dumps chrome://tracing JSON at exit. Empty
  // paths disable each exporter.
  std::string metrics_out;
  std::uint64_t metrics_interval_ms = 500;
  std::string trace_out;
  // --threads=N: TaskScheduler worker count AND the default kernel width
  // (par::set_num_threads); 0 = leave both at their runtime defaults.
  // --sched: run the analysis kernels on the scheduler execution path
  // instead of OpenMP (bit-identical results; see src/sched/parallel.hpp).
  // Both are applied eagerly by parse_common — the scheduler worker count
  // must be fixed before anything instantiates the global instance.
  int threads = 0;
  bool sched_kernels = false;
};

// Parse --scale, --datasets=a,b,c, --latency, --pool-mb, --system,
// --batch=a,b,c, --async-writers=a,b,c, --shards=a,b,c,
// --ingest-profile=balanced|ingest-heavy, --section-slots=N (power of
// two), --autotune, --absorb-min=N, --csr-cache, --live-ingest,
// --live-producers=N, --threads=N, --sched. Throws std::invalid_argument
// on non-positive / non-numeric / unknown values.
BenchConfig parse_common(const Cli& cli, double default_scale,
                         std::vector<std::string> default_datasets);

// Parse an --ingest-profile value; throws std::invalid_argument on unknown
// names (shared with the examples so spellings cannot drift).
core::IngestProfile parse_ingest_profile(const std::string& value);

// RAII exporter lifecycle for a bench/example run: starts the background
// MetricsSampler when `metrics_out` is non-empty and enables the structural
// trace ring when `trace_out` is non-empty. The destructor stops the
// sampler (final JSON-lines flush), writes a one-shot Prometheus dump to
// `<metrics_out>.prom`, and dumps the trace ring as chrome://tracing JSON
// to `trace_out`. Construct once, right after parse_common/print_banner.
class ObsSession {
 public:
  ObsSession(const std::string& metrics_out, std::uint64_t interval_ms,
             const std::string& trace_out);
  explicit ObsSession(const BenchConfig& cfg)
      : ObsSession(cfg.metrics_out, cfg.metrics_interval_ms, cfg.trace_out) {}
  ~ObsSession();
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

 private:
  std::string metrics_out_;
  std::string trace_out_;
  std::unique_ptr<obs::MetricsSampler> sampler_;
};

// AsyncIngestor options for a bench run: absorber count plus the config's
// absorb-tuning knobs (autotune / fixed absorb-min), one place so fig6 and
// table3 sweeps cannot diverge.
ingest::AsyncIngestor::Options async_options(const BenchConfig& cfg,
                                             int absorbers);

// CLI cap on shard counts (each shard owns a pool, so huge values are a
// memory footgun); shared by parse_common and the examples.
inline constexpr int kMaxShardsCli = 64;

// Shard counts for a sharded sweep: cfg.shards plus the S=1 baseline,
// deduplicated ascending (speedups are reported against S=1).
std::vector<int> sharded_sweep_counts(const BenchConfig& cfg);

// Print a sharded sweep table: one MEPS column per shard count plus the
// speedup of the largest count vs the S=1 baseline. `measure` runs one
// (dataset, shard count) cell. Shared by fig6/table3 so their tables
// cannot drift.
void print_sharded_sweep(
    const BenchConfig& cfg, const std::vector<int>& counts,
    const std::function<double(const std::string& dataset, int shards)>&
        measure,
    std::ostream& os);

// Enable/disable the process-global PM latency model with Optane-like
// defaults (see pmem/latency_model.hpp for the parameters).
void configure_latency(bool enabled);

// Same, plus a per-line READ charge (the --dram-cache section's media
// model). read_ns_per_line > 0 forces the model on even under
// --latency=off, so the section's comparison is always charged; pass 0 to
// drop back to the write-only default.
void configure_latency_with_read(bool enabled,
                                 std::uint64_t read_ns_per_line);

// Fresh anonymous pool (benches do not need cross-process durability).
std::unique_ptr<pmem::PmemPool> fresh_pool(std::uint64_t mb);

// Pool sized for the tuning: plain `mb` normally, `mb * kColdVirtualFactor`
// of virtual span when the cold tier is on (the tier enforces `mb` as the
// physical budget).
std::unique_ptr<pmem::PmemPool> fresh_pool_for(std::uint64_t mb,
                                               const StoreTuning& tuning);

// Copy the tuning's cold-tier knobs into store options; `pool_mb` becomes
// the tier's physical budget.
void apply_cold_tuning(core::DgapOptions& o, const StoreTuning& tuning,
                       std::uint64_t pool_mb);

// Print a standard bench banner so outputs are self-describing.
void print_banner(const std::string& title, const BenchConfig& cfg);

// --- insert timing ----------------------------------------------------------

struct InsertResult {
  double seconds = 0;
  double meps = 0;  // million edges per second over the timed body
};

// Insert the 10% warm-up untimed, then time the remaining 90% (paper §4.1).
template <typename InsertFn>
InsertResult time_inserts(const EdgeStream& stream, InsertFn&& insert,
                          double warmup_frac = 0.10) {
  for (const Edge& e : stream.warmup(warmup_frac)) insert(e.src, e.dst);
  const auto body = stream.body(warmup_frac);
  Timer t;
  for (const Edge& e : body) insert(e.src, e.dst);
  InsertResult r;
  r.seconds = t.seconds();
  r.meps = static_cast<double>(body.size()) / r.seconds / 1e6;
  return r;
}

// Multi-writer variant: the body is striped across `threads` writers. The
// callable is a template parameter (not std::function) so multi-writer
// numbers measure the store, not per-edge indirect-call dispatch.
template <typename InsertFn>
InsertResult time_inserts_mt(const EdgeStream& stream, int threads,
                             InsertFn&& insert, double warmup_frac = 0.10) {
  for (const Edge& e : stream.warmup(warmup_frac)) insert(e.src, e.dst);
  const auto body = stream.body(warmup_frac);
  Timer t;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      for (std::size_t i = static_cast<std::size_t>(w); i < body.size();
           i += static_cast<std::size_t>(threads))
        insert(body[i].src, body[i].dst);
    });
  }
  for (auto& th : workers) th.join();
  InsertResult r;
  r.seconds = t.seconds();
  r.meps = static_cast<double>(body.size()) / r.seconds / 1e6;
  return r;
}

// Batched single-writer driver: feeds `insert_range` chronological chunks of
// `batch` edges (warm-up untimed, body timed). batch <= 1 degrades to
// per-edge-sized spans so one code path serves both modes.
template <typename InsertRangeFn>
InsertResult time_inserts_batched(const EdgeStream& stream, std::size_t batch,
                                  InsertRangeFn&& insert_range,
                                  double warmup_frac = 0.10) {
  batch = std::max<std::size_t>(batch, 1);
  const auto feed = [&](std::span<const Edge> part) {
    for (std::size_t i = 0; i < part.size(); i += batch)
      insert_range(part.subspan(i, std::min(batch, part.size() - i)));
  };
  feed(stream.warmup(warmup_frac));
  const auto body = stream.body(warmup_frac);
  Timer t;
  feed(body);
  InsertResult r;
  r.seconds = t.seconds();
  r.meps = static_cast<double>(body.size()) / r.seconds / 1e6;
  return r;
}

// Batched multi-writer driver: the body is cut into chronological chunks of
// `batch` edges and the chunks are striped across `threads` writers.
template <typename InsertRangeFn>
InsertResult time_inserts_mt_batched(const EdgeStream& stream, int threads,
                                     std::size_t batch,
                                     InsertRangeFn&& insert_range,
                                     double warmup_frac = 0.10) {
  batch = std::max<std::size_t>(batch, 1);
  const auto warm = stream.warmup(warmup_frac);
  for (std::size_t i = 0; i < warm.size(); i += batch)
    insert_range(warm.subspan(i, std::min(batch, warm.size() - i)));
  const auto body = stream.body(warmup_frac);
  const std::size_t chunks = (body.size() + batch - 1) / batch;
  Timer t;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      for (std::size_t c = static_cast<std::size_t>(w); c < chunks;
           c += static_cast<std::size_t>(threads)) {
        const std::size_t begin = c * batch;
        insert_range(body.subspan(begin,
                                  std::min(batch, body.size() - begin)));
      }
    });
  }
  for (auto& th : workers) th.join();
  InsertResult r;
  r.seconds = t.seconds();
  r.meps = static_cast<double>(body.size()) / r.seconds / 1e6;
  return r;
}

// Async driver: `producers` threads submit chronological chunks of `batch`
// edges to the ingestor; the timed body ends when everything submitted is
// absorbed and durable (drain), so async numbers are comparable to the
// synchronous insert_batch path at equal total work. Producer-side cost
// (submit calls returning, before absorption completes) is reported
// separately — that is the latency an event-feed front end actually sees.
struct AsyncInsertResult {
  double submit_seconds = 0;  // all producers done submitting
  double total_seconds = 0;   // ... and the ingestor fully drained
  double submit_meps = 0;     // producer-side throughput
  double meps = 0;            // end-to-end throughput (drain included)
};

AsyncInsertResult time_inserts_async(const EdgeStream& stream, int producers,
                                     std::size_t batch,
                                     ingest::AsyncIngestor& ingestor,
                                     double warmup_frac = 0.10);

// --- analysis concurrent with ingest (--live-ingest) ------------------------

// One HTAP round trip: `producers` submit threads flood `body` through the
// store's async ingestor (absorbers draining in the background) while the
// CALLING thread repeatedly takes a snapshot and times single-threaded
// PageRank over it. Exercises exactly what the epoch-versioned snapshot
// refactor bought: analysis rounds proceed through vertex growth, window
// rebalances and resizes, and ingest never stalls behind a held snapshot.
// Per-analysis-round latency percentiles (microseconds), computed from
// histogram-snapshot deltas taken around each snapshot+PageRank round: the
// absorb-batch distribution the flood saw during THAT round, and the
// snapshot-freeze p99 over the round's captures.
struct LiveRound {
  double absorb_p50_us = 0;
  double absorb_p99_us = 0;
  double absorb_p999_us = 0;
  double freeze_p99_us = 0;
};

struct LiveIngestResult {
  double ingest_seconds = 0;   // submit start -> everything absorbed
  double ingest_meps = 0;      // body.size() over ingest_seconds
  int analysis_rounds = 0;     // completed snapshot+PageRank rounds
  double avg_kernel_seconds = 0;        // mean PR time while ingest ran
  double quiescent_kernel_seconds = 0;  // PR time after the drain
  std::vector<LiveRound> rounds;        // one entry per analysis round
};

class IStore;
LiveIngestResult run_live_ingest(IStore& store, std::span<const Edge> body,
                                 int producers, int absorbers,
                                 std::size_t batch);

// The full --live-ingest report shared by fig7/table4 (one table: ingest
// MEPS, PR rounds, avg/quiescent PR seconds, slowdown): per dataset,
// preload the first half of the stream synchronously, then run_live_ingest
// over the second half. `stream_for` supplies the loaded stream (fig7
// reuses its cache; table4 loads on demand). Under cfg.incremental the
// section instead runs the round-over-round delta-analytics driver: per
// round, diff the cut against the previous one, run incremental PR/CC
// seeded from the previous round's results next to the full recomputes,
// and verify (CC labels exactly, PR within the shared residual bound).
// Returns false if any round's verification failed (benches treat that as
// a hard failure); the plain flood path always returns true.
[[nodiscard]] bool print_live_ingest_section(
    const BenchConfig& cfg,
    const std::function<const EdgeStream&(const std::string&)>& stream_for,
    std::ostream& os);

// A DGAP store batch-loaded with a whole stream, ready for snapshot
// analysis (the --csr-cache sections in fig7/fig8 start here).
struct LoadedDgap {
  std::unique_ptr<pmem::PmemPool> pool;
  std::unique_ptr<core::DgapStore> store;
};
LoadedDgap load_dgap_for_analysis(const EdgeStream& stream,
                                  std::uint64_t pool_mb,
                                  const StoreTuning& tuning = {});

// --- --csr-cache section (fig7/fig8) ----------------------------------------

// Time `kernel(view, source)` over the raw snapshot and over the cached
// CSR materialization of the SAME cut; `identical` is an exact result
// comparison (the CSR preserves degree semantics and neighbor order, so
// kernels must match bit-for-bit).
struct CsrCachePair {
  double snap_seconds = 0;
  double csr_seconds = 0;
  bool identical = false;
};

template <typename Kernel>
CsrCachePair time_csr_cache_pair(const core::Snapshot& snap,
                                 core::SnapshotCsrCache& cache,
                                 NodeId source, Kernel&& kernel) {
  CsrCachePair p;
  Timer t1;
  const auto raw = kernel(snap, source);
  p.snap_seconds = t1.seconds();
  Timer t2;
  const auto cached = kernel(cache.get(snap), source);
  p.csr_seconds = t2.seconds();
  p.identical = raw == cached;
  return p;
}

// The full --csr-cache report shared by fig7 (PR+CC) and fig8 (BFS+BC):
// per dataset, load DGAP, snapshot ONCE, materialize the cut (timed, the
// single cache miss), then run kernel A and kernel B over raw-vs-cached
// views — the B pair is the "second kernel over the same cut" the cache
// exists for. Prints the table and returns false if any kernel pair
// diverged (benches treat that as a hard failure).
template <typename KernelA, typename KernelB>
bool print_csr_cache_section(
    const BenchConfig& cfg, const char* a_label, const char* b_label,
    const std::function<const EdgeStream&(const std::string&)>& stream_for,
    KernelA&& kernel_a, KernelB&& kernel_b, std::ostream& os) {
  os << "\n--- DGAP SnapshotCsrCache: " << a_label << " + " << b_label
     << " over ONE snapshot (1 thread) ---\n";
  const std::string a = a_label;
  const std::string b = b_label;
  TablePrinter table({"Graph", "build(s)", a + ".snap", a + ".csr",
                      b + ".snap", b + ".csr", "2nd-kernel speedup",
                      "identical"});
  const par::ScopedKernelThreads one_thread(1);
  bool all_identical = true;
  for (const auto& name : cfg.datasets) {
    const LoadedDgap loaded =
        load_dgap_for_analysis(stream_for(name), cfg.pool_mb);
    const core::Snapshot snap = loaded.store->consistent_view();
    const NodeId source = algorithms::max_degree_vertex(snap);
    Timer tb;
    core::SnapshotCsrCache cache;
    (void)cache.get(snap);  // the one miss: materialize the cut
    const double build_s = tb.seconds();

    const CsrCachePair pa = time_csr_cache_pair(snap, cache, source,
                                                kernel_a);
    const CsrCachePair pb = time_csr_cache_pair(snap, cache, source,
                                                kernel_b);
    const bool identical = pa.identical && pb.identical;
    all_identical = all_identical && identical;
    table.add_row({name, TablePrinter::fmt(build_s, 3),
                   TablePrinter::fmt(pa.snap_seconds, 3),
                   TablePrinter::fmt(pa.csr_seconds, 3),
                   TablePrinter::fmt(pb.snap_seconds, 3),
                   TablePrinter::fmt(pb.csr_seconds, 3),
                   TablePrinter::fmt(pb.snap_seconds / pb.csr_seconds),
                   identical ? "yes" : "NO (BUG)"});
    if (!identical) break;
  }
  table.print(os);
  if (all_identical)
    os << "# csr-cache: per dataset 1 build (miss) + 3 hits; all kernel "
          "results verified identical to the uncached path\n";
  return all_identical;
}

// --- --dram-cache section (fig7/fig8) ---------------------------------------

// The DRAM hot-tier report: per dataset, run kernel A and kernel B over a
// cache-OFF store and a cache-ON store under a read-charged media model
// (--pm-read-ns per line), next to the static-CSR floor which stays
// uncharged (the DRAM-speed target the tier chases). Reports the hit rate
// and how much of the PM-vs-CSR gap the tier closed; returns false if
// cache-on kernel results diverge from cache-off (hard failure — the tier
// must be semantically invisible).
template <typename KernelA, typename KernelB>
bool print_dram_cache_section(
    const BenchConfig& cfg, const char* a_label, const char* b_label,
    const std::function<const EdgeStream&(const std::string&)>& stream_for,
    KernelA&& kernel_a, KernelB&& kernel_b, std::ostream& os) {
  os << "\n--- DGAP DRAM hot tier: " << a_label << " + " << b_label
     << " (--dram-cache=" << cfg.tuning.dram_cache_mb
     << "MB eviction=" << tier::eviction_name(cfg.tuning.eviction)
     << " pm-read-ns=" << cfg.pm_read_ns << ", 1 thread) ---\n";
  TablePrinter table({"Graph", "csr(s)", "pm(s)", "cached(s)", "speedup",
                      "hit%", "gap closed", "identical"});
  const par::ScopedKernelThreads one_thread(1);
  bool all_identical = true;
  tier::CacheStats totals;
  for (const auto& name : cfg.datasets) {
    const EdgeStream& stream = stream_for(name);

    // Static CSR floor: immutable, sequential, effectively DRAM-speed —
    // deliberately NOT read-charged (see BenchConfig::pm_read_ns).
    auto csr_pool = fresh_pool(cfg.pool_mb);
    const auto csr = baselines::PmemCsr::build(*csr_pool, stream);
    const NodeId source = algorithms::max_degree_vertex(*csr);
    Timer tc;
    (void)kernel_a(*csr, source);
    (void)kernel_b(*csr, source);
    const double csr_s = tc.seconds();

    // Cache OFF: every adjacency read pays the media's read cost.
    StoreTuning off = cfg.tuning;
    off.dram_cache_mb = 0;
    const LoadedDgap pm = load_dgap_for_analysis(stream, cfg.pool_mb, off);
    const core::Snapshot pm_view = pm.store->consistent_view();
    configure_latency_with_read(cfg.latency, cfg.pm_read_ns);
    Timer tp;
    const auto pm_a = kernel_a(pm_view, source);
    const auto pm_b = kernel_b(pm_view, source);
    const double pm_s = tp.seconds();
    configure_latency_with_read(cfg.latency, 0);

    // Cache ON: kernel A populates on miss (bulk sequential reads, cheap
    // per line); kernel B mostly hits resident sections.
    const LoadedDgap hot =
        load_dgap_for_analysis(stream, cfg.pool_mb, cfg.tuning);
    const core::Snapshot hot_view = hot.store->consistent_view();
    configure_latency_with_read(cfg.latency, cfg.pm_read_ns);
    Timer th;
    const auto hot_a = kernel_a(hot_view, source);
    const auto hot_b = kernel_b(hot_view, source);
    const double hot_s = th.seconds();
    configure_latency_with_read(cfg.latency, 0);
    const tier::CacheStats cs = hot.store->cache_stats();
    totals += cs;

    const bool identical = pm_a == hot_a && pm_b == hot_b;
    all_identical = all_identical && identical;
    const double gap = pm_s - csr_s;
    table.add_row(
        {name, TablePrinter::fmt(csr_s, 3), TablePrinter::fmt(pm_s, 3),
         TablePrinter::fmt(hot_s, 3), TablePrinter::fmt(pm_s / hot_s),
         TablePrinter::fmt(100.0 * cs.hit_rate(), 1),
         gap > 1e-9 ? TablePrinter::fmt(100.0 * (pm_s - hot_s) / gap, 1) + "%"
                    : "-",
         identical ? "yes" : "NO (BUG)"});
    if (!identical) break;
  }
  table.print(os);
  os << "# dram-cache counters: populates=" << totals.populates
     << " evictions=" << totals.evictions
     << " admit_rejects=" << totals.admit_rejects
     << " resident=" << totals.resident << "/" << totals.frames << "\n";
  if (all_identical)
    os << "# dram-cache: kernel results verified identical cache-on vs "
          "cache-off; csr column is the uncharged DRAM-speed floor\n";
  return all_identical;
}

// --- --cold-tier section (fig7) ---------------------------------------------

// The SSD cold-tier report: per dataset, run kernel A and kernel B over an
// unconstrained store (tier off, everything resident in pmem) and over a
// capacity-constrained store whose enforced budget is HALF the actual
// post-load resident footprint — the edge array provably exceeds what pmem
// may hold, so a real fraction of sections is served from (and promoted
// off) the SSD backing file during the kernels. Reports the slowdown
// factor and the tier's counters; returns false if any kernel result
// diverges (hard failure — tiering must be semantically invisible).
template <typename KernelA, typename KernelB>
bool print_cold_tier_section(
    const BenchConfig& cfg, const char* a_label, const char* b_label,
    const std::function<const EdgeStream&(const std::string&)>& stream_for,
    KernelA&& kernel_a, KernelB&& kernel_b, std::ostream& os) {
  os << "\n--- DGAP SSD cold tier: " << a_label << " + " << b_label
     << " with budget = resident/2 (uring-depth=" << cfg.tuning.uring_depth
     << ", 1 thread) ---\n";
  TablePrinter table({"Graph", "resident MB", "budget MB", "cold sect",
                      "full(s)", "cold(s)", "slowdown", "identical"});
  const par::ScopedKernelThreads one_thread(1);
  bool all_identical = true;
  tier::ColdStats totals;
  const char* backend = "off";
  for (const auto& name : cfg.datasets) {
    const EdgeStream& stream = stream_for(name);

    // Unconstrained baseline: tier off, the whole edge array in pmem. It
    // gets the same oversized span the constrained store's pool has —
    // --pool-mb is the budget under test, not a cap on the baseline.
    StoreTuning flat = cfg.tuning;
    flat.cold_tier = false;
    const LoadedDgap full = load_dgap_for_analysis(
        stream, cfg.pool_mb * kColdVirtualFactor, flat);
    const core::Snapshot full_view = full.store->consistent_view();
    const NodeId source = algorithms::max_degree_vertex(full_view);
    Timer tf;
    const auto full_a = kernel_a(full_view, source);
    const auto full_b = kernel_b(full_view, source);
    const double full_s = tf.seconds();

    // Constrained: same load, then clamp the budget to half the measured
    // footprint and enforce it synchronously — the kernels start against a
    // store at least half of whose sections live on SSD.
    const LoadedDgap cold =
        load_dgap_for_analysis(stream, cfg.pool_mb, cfg.tuning);
    const std::uint64_t resident = cold.store->resident_bytes();
    const std::uint64_t budget = std::max<std::uint64_t>(resident / 2, 1);
    cold.store->set_cold_budget_bytes(budget);
    cold.store->cold_enforce_budget();
    const std::uint64_t cold_sections = cold.store->cold_stats().cold_sections;
    backend = cold.store->cold_io_backend();
    const core::Snapshot cold_view = cold.store->consistent_view();
    Timer tc;
    const auto cold_a = kernel_a(cold_view, source);
    const auto cold_b = kernel_b(cold_view, source);
    const double cold_s = tc.seconds();
    const tier::ColdStats cs = cold.store->cold_stats();
    totals.demotions += cs.demotions;
    totals.promotions += cs.promotions;
    totals.cold_reads += cs.cold_reads;
    totals.cold_read_bytes += cs.cold_read_bytes;
    totals.read_retries += cs.read_retries;

    const bool identical = full_a == cold_a && full_b == cold_b;
    all_identical = all_identical && identical;
    table.add_row({name, TablePrinter::fmt(resident / (1024.0 * 1024.0), 1),
                   TablePrinter::fmt(budget / (1024.0 * 1024.0), 1),
                   std::to_string(cold_sections),
                   TablePrinter::fmt(full_s, 3), TablePrinter::fmt(cold_s, 3),
                   TablePrinter::fmt(cold_s / full_s, 2) + "x",
                   identical ? "yes" : "NO (BUG)"});
    if (!identical) break;
  }
  table.print(os);
  os << "# cold-tier counters: io=" << backend
     << " demotions=" << totals.demotions
     << " promotions=" << totals.promotions
     << " cold_reads=" << totals.cold_reads
     << " cold_read_MB=" << totals.cold_read_bytes / (1u << 20)
     << " read_retries=" << totals.read_retries << "\n";
  if (all_identical)
    os << "# cold-tier: kernel results verified identical constrained vs "
          "unconstrained; slowdown is the price of serving the overflow "
          "from SSD\n";
  return all_identical;
}

// --- type-erased store ------------------------------------------------------

// Uniform handle over every system. Kernel timers run the shared GAPBS-style
// implementations on the store's analysis view with the requested kernel
// thread count applied (par::ScopedKernelThreads), and return seconds.
class IStore {
 public:
  virtual ~IStore() = default;
  virtual void insert(NodeId src, NodeId dst) = 0;
  // Batched ingestion; systems with native batching (DGAP insert_batch,
  // GraphOne edge-list appends, LLAMA delta map, XPGraph log/archive, BAL
  // block fills) override this. The default preserves per-edge semantics.
  virtual void insert_batch(std::span<const Edge> edges) {
    for (const Edge& e : edges) insert(e.src, e.dst);
  }
  // Asynchronous ingestion entry point: staging queues + background
  // absorbers draining through this store's batch path (see
  // src/ingest/async_ingestor.hpp for the epoch-durability contract). The
  // wiring lives here ONCE: sink serialization follows
  // concurrent_batch_safe(), stores with a delete path override
  // batch_sink(), and custom queue routing goes in Options::route — no
  // store re-implements the option plumbing. The store must outlive the
  // ingestor.
  virtual std::unique_ptr<ingest::AsyncIngestor> make_async(
      ingest::AsyncIngestor::Options opts) {
    opts.serialize_sink = !concurrent_batch_safe();
    return std::make_unique<ingest::AsyncIngestor>(batch_sink(),
                                                   std::move(opts));
  }
  // Whether insert_batch tolerates concurrent callers (the absorbers).
  // Most baselines are single-ingest; DGAP and BAL are not.
  [[nodiscard]] virtual bool concurrent_batch_safe() const { return false; }
  // Make all inserted edges analysis-visible (snapshot/flush/archive).
  virtual void finalize() {}
  [[nodiscard]] virtual std::uint64_t num_edges() const = 0;
  // DRAM hot-tier counters; zero-valued for systems without the tier
  // (hits + misses == 0 means "no cache ran here").
  [[nodiscard]] virtual tier::CacheStats cache_stats() const { return {}; }
  // Snapshot-freeze latency distribution (ns); empty for systems without
  // the obs histograms. DGAP-backed models override (sharded: the merged
  // cross-shard cut distribution).
  [[nodiscard]] virtual obs::HistogramSnapshot freeze_hist() const {
    return {};
  }
  virtual NodeId pick_source() = 0;
  virtual double time_pagerank(int threads) = 0;
  virtual double time_bfs(int threads, NodeId source) = 0;
  virtual double time_bc(int threads, NodeId source) = 0;
  virtual double time_cc(int threads) = 0;

 protected:
  // Absorption sink handed to make_async. Default: insert-only through
  // insert_batch (deletes throw). DGAP-backed models override to route
  // tombstones to delete_batch.
  virtual ingest::AsyncIngestor::BatchFn batch_sink() {
    return [this](std::span<const Edge> edges, bool tombstone) {
      if (tombstone) throw std::logic_error("store has no delete_batch path");
      insert_batch(edges);
    };
  }
};

inline const std::vector<std::string> kDynamicSystems = {
    "dgap", "bal", "llama", "graphone", "xpgraph"};

// Create a dynamic store by name. `batch_hint` parameterizes per-system
// batching (LLAMA snapshot batch = 1% of edges, XPGraph archive threshold).
// `tuning` selects DGAP's ingest-profile section geometry (other systems
// ignore it).
std::unique_ptr<IStore> make_store(const std::string& kind,
                                   pmem::PmemPool& pool, NodeId vertices,
                                   std::uint64_t edges_estimate,
                                   int writer_threads,
                                   const StoreTuning& tuning = {});

// Static CSR (analysis oracle), built in one shot from a loaded stream.
std::unique_ptr<IStore> make_csr(pmem::PmemPool& pool,
                                 const EdgeStream& stream);

// DGAP sharded across `shards` independent anonymous pools
// (src/core/sharded_store.hpp): the store owns its pools, splitting
// `pool_mb_total` across them. make_async routes each staging queue to
// exactly one shard.
std::unique_ptr<IStore> make_sharded_store(int shards, NodeId vertices,
                                           std::uint64_t edges_estimate,
                                           int writer_threads,
                                           std::uint64_t pool_mb_total,
                                           const StoreTuning& tuning = {});

}  // namespace dgap::bench

// Shared benchmark harness: common CLI handling, the Optane-like latency
// model setup, the YCSB-style warm-up/measure insert driver (paper §4.1),
// and a type-erased store wrapper so every bench drives all six systems
// (CSR, DGAP, BAL, LLAMA, GraphOne-FD, XPGraph) through identical code.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/cli.hpp"
#include "src/common/timer.hpp"
#include "src/graph/edge_stream.hpp"
#include "src/graph/types.hpp"
#include "src/pmem/pool.hpp"

namespace dgap::bench {

struct BenchConfig {
  double scale = 1.0;  // dataset scale multiplier (see datasets.hpp)
  std::vector<std::string> datasets;
  bool latency = true;  // inject Optane-like delays
  std::uint64_t pool_mb = 1024;
  std::string only_system;  // run a single system when non-empty
};

// Parse --scale, --datasets=a,b,c, --latency, --pool-mb, --system.
BenchConfig parse_common(const Cli& cli, double default_scale,
                         std::vector<std::string> default_datasets);

// Enable/disable the process-global PM latency model with Optane-like
// defaults (see pmem/latency_model.hpp for the parameters).
void configure_latency(bool enabled);

// Fresh anonymous pool (benches do not need cross-process durability).
std::unique_ptr<pmem::PmemPool> fresh_pool(std::uint64_t mb);

// Print a standard bench banner so outputs are self-describing.
void print_banner(const std::string& title, const BenchConfig& cfg);

// --- insert timing ----------------------------------------------------------

struct InsertResult {
  double seconds = 0;
  double meps = 0;  // million edges per second over the timed body
};

// Insert the 10% warm-up untimed, then time the remaining 90% (paper §4.1).
template <typename InsertFn>
InsertResult time_inserts(const EdgeStream& stream, InsertFn&& insert,
                          double warmup_frac = 0.10) {
  for (const Edge& e : stream.warmup(warmup_frac)) insert(e.src, e.dst);
  const auto body = stream.body(warmup_frac);
  Timer t;
  for (const Edge& e : body) insert(e.src, e.dst);
  InsertResult r;
  r.seconds = t.seconds();
  r.meps = static_cast<double>(body.size()) / r.seconds / 1e6;
  return r;
}

// Multi-writer variant: the body is striped across `threads` writers.
InsertResult time_inserts_mt(
    const EdgeStream& stream, int threads,
    const std::function<void(NodeId, NodeId)>& insert,
    double warmup_frac = 0.10);

// --- type-erased store ------------------------------------------------------

// Uniform handle over every system. Kernel timers run the shared GAPBS-style
// implementations on the store's analysis view with `omp_set_num_threads`
// applied, and return seconds.
class IStore {
 public:
  virtual ~IStore() = default;
  virtual void insert(NodeId src, NodeId dst) = 0;
  // Make all inserted edges analysis-visible (snapshot/flush/archive).
  virtual void finalize() {}
  [[nodiscard]] virtual std::uint64_t num_edges() const = 0;
  virtual NodeId pick_source() = 0;
  virtual double time_pagerank(int threads) = 0;
  virtual double time_bfs(int threads, NodeId source) = 0;
  virtual double time_bc(int threads, NodeId source) = 0;
  virtual double time_cc(int threads) = 0;
};

inline const std::vector<std::string> kDynamicSystems = {
    "dgap", "bal", "llama", "graphone", "xpgraph"};

// Create a dynamic store by name. `batch_hint` parameterizes per-system
// batching (LLAMA snapshot batch = 1% of edges, XPGraph archive threshold).
std::unique_ptr<IStore> make_store(const std::string& kind,
                                   pmem::PmemPool& pool, NodeId vertices,
                                   std::uint64_t edges_estimate,
                                   int writer_threads);

// Static CSR (analysis oracle), built in one shot from a loaded stream.
std::unique_ptr<IStore> make_csr(pmem::PmemPool& pool,
                                 const EdgeStream& stream);

}  // namespace dgap::bench

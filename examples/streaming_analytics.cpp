// Streaming analytics: the cellular-network scenario from the paper's
// introduction — hotspots must be identified *while* the traffic graph
// keeps changing.
//
// A writer thread ingests a continuous stream of call/handover events; an
// analysis thread periodically snapshots the graph and reports the current
// top-k "hotspot" cells by PageRank and the number of connected clusters.
// The snapshot guarantees each analysis round sees an immutable, consistent
// graph even though inserts never pause.
//
// Run:  ./examples/streaming_analytics [--events 200000] [--rounds 5]
#include <algorithm>
#include <atomic>
#include <iomanip>
#include <iostream>
#include <thread>
#include <vector>

#include "src/algorithms/cc.hpp"
#include "src/algorithms/pagerank.hpp"
#include "src/common/cli.hpp"
#include "src/common/timer.hpp"
#include "src/core/dgap_store.hpp"
#include "src/graph/generators.hpp"

using namespace dgap;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto num_events =
      static_cast<std::size_t>(cli.get_int("events", 200000));
  const int rounds = static_cast<int>(cli.get_int("rounds", 5));
  const NodeId cells = 4096;  // cell towers in the region

  auto pool = pmem::PmemPool::create({.path = "", .size = 256 << 20});
  core::DgapOptions options;
  options.init_vertices = cells;
  options.init_edges = num_events;
  options.max_writer_threads = 2;
  auto graph = core::DgapStore::create(*pool, options);

  // Traffic events: skewed, like real cellular hotspots.
  EdgeStream events = symmetrize(generate_rmat(cells, num_events / 2, 99));

  std::atomic<std::size_t> ingested{0};
  std::atomic<bool> done{false};
  std::thread writer([&] {
    std::size_t since_pause = 0;
    for (const Edge& e : events.edges()) {
      graph->insert_edge(e.src, e.dst);
      ingested.fetch_add(1, std::memory_order_relaxed);
      // Pace the stream like a live event feed so the analysis rounds
      // observe the graph actually growing.
      if (++since_pause == 1000) {
        since_pause = 0;
        spin_wait_ns(3'000'000);  // ~3 ms per 1000 events
      }
    }
    done = true;
  });

  std::cout << "round  ingested   clusters  top hotspots (cell:score)\n";
  for (int round = 0; round < rounds; ++round) {
    // Wait for roughly the next chunk of traffic to arrive.
    const std::size_t target =
        std::min(events.num_edges(),
                 (round + 1) * events.num_edges() / rounds);
    while (!done && ingested.load(std::memory_order_relaxed) < target) {
      std::this_thread::yield();
    }

    const core::Snapshot snap = graph->consistent_view();
    const auto pr = algorithms::pagerank(snap, {.iterations = 10});
    const auto comp = algorithms::connected_components(snap);

    std::vector<NodeId> order(static_cast<std::size_t>(snap.num_nodes()));
    for (NodeId v = 0; v < snap.num_nodes(); ++v) order[v] = v;
    std::partial_sort(order.begin(), order.begin() + 3, order.end(),
                      [&](NodeId a, NodeId b) { return pr[a] > pr[b]; });
    std::vector<bool> seen(comp.size(), false);
    int clusters = 0;
    for (NodeId v = 0; v < snap.num_nodes(); ++v) {
      if (!seen[comp[v]]) {
        seen[comp[v]] = true;
        ++clusters;
      }
    }

    std::cout << std::setw(5) << round << "  " << std::setw(8)
              << ingested.load() << "  " << std::setw(8) << clusters << "  ";
    for (int k = 0; k < 3; ++k)
      std::cout << order[k] << ":" << std::fixed << std::setprecision(5)
                << pr[order[k]] << (k < 2 ? ", " : "\n");
  }

  writer.join();
  std::cout << "stream drained; total edges "
            << graph->num_edge_slots() << "\n";
  return 0;
}

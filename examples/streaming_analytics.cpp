// Streaming analytics: the cellular-network scenario from the paper's
// introduction — hotspots must be identified *while* the traffic graph
// keeps changing.
//
// Ingestion runs through the asynchronous ingestion subsystem
// (src/ingest/async_ingestor.hpp): P producer threads submit batches of
// call/handover events to bounded per-section-group staging queues, and K
// background absorber threads drain them into the store through the batched
// fast path. Meanwhile the analysis thread periodically snapshots the graph
// and reports the current top-k "hotspot" cells by PageRank and the number
// of connected clusters — truly concurrent ingestion and analysis: the
// producers never block on PM flushes, the absorbers never pause for the
// analysis, and every snapshot is an immutable consistent view. The
// round-0 snapshot is deliberately HELD until the stream is drained:
// absorbers keep running straight through it (vertex growth, rebalances
// and resizes never wait on a held snapshot — snapshot.hpp), and at the
// end it still reads its original cut.
//
// --incremental switches the per-round analytics to the delta-based
// kernels (src/algorithms/incremental/): round 0 seeds with a full
// PR/CC, every later round diffs its cut against the previous round's
// (core::snapshot_delta) and advances the previous results over the delta
// only — the report gains delta-size and active-vertex columns, and after
// the drain the final round's results are verified against full recomputes
// (CC exactly, PR within the residual bound); divergence exits 1.
//
// Run:  ./examples/streaming_analytics [--events 200000] [--rounds 5]
//                                      [--producers 2] [--async-writers 2]
//                                      [--autotune] [--ingest-profile ...]
//                                      [--incremental]
//                                      [--threads N] [--sched]
//                                      [--metrics-out F [--metrics-interval-ms N]]
//                                      [--trace-out F]
//
// --threads sizes the process TaskScheduler (absorbers, offloaded
// structural work, and — with --sched — the analysis kernels all share its
// workers); --sched routes the per-round PR/CC onto the scheduler instead
// of OpenMP. Each round reports the scheduler's steal rate and queue depth
// next to the ingest telemetry, and --metrics-out samples the sched_*
// series alongside the store's.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "src/algorithms/cc.hpp"
#include "src/algorithms/incremental/cc_incr.hpp"
#include "src/algorithms/incremental/delta_mirror.hpp"
#include "src/algorithms/incremental/pagerank_incr.hpp"
#include "src/algorithms/pagerank.hpp"
#include "src/core/snapshot_delta.hpp"
#include "src/bench_common/harness.hpp"
#include "src/common/cli.hpp"
#include "src/common/timer.hpp"
#include "src/core/dgap_store.hpp"
#include "src/graph/generators.hpp"
#include "src/ingest/async_ingestor.hpp"
#include "src/sched/parallel.hpp"
#include "src/sched/task_scheduler.hpp"

using namespace dgap;

namespace {

// Positive-integer CLI argument or exit(2): a streaming daemon fed a
// nonsensical knob should refuse to start, not misbehave quietly.
std::int64_t require_positive(const Cli& cli, const std::string& key,
                              std::int64_t def) {
  if (!cli.has(key)) return def;
  try {
    return parse_positive_int(cli.get(key, ""), "--" + key);
  } catch (const std::exception& ex) {
    std::cerr << ex.what() << "\n";
    std::exit(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto num_events =
      static_cast<std::size_t>(require_positive(cli, "events", 200000));
  const int rounds = static_cast<int>(require_positive(cli, "rounds", 5));
  const int producers =
      static_cast<int>(require_positive(cli, "producers", 2));
  const int absorbers =
      static_cast<int>(require_positive(cli, "async-writers", 2));
  const bool autotune = cli.get_bool("autotune", false);
  const bool incremental = cli.get_bool("incremental", false);
  // Scheduler sizing must precede the first TaskScheduler::global() touch
  // (the ingestor's constructor), or configure() rejects the change.
  if (cli.has("threads")) {
    const auto threads = require_positive(cli, "threads", 0);
    try {
      sched::TaskScheduler::configure(
          {.workers = static_cast<std::size_t>(threads)});
    } catch (const std::exception& ex) {
      std::cerr << "--threads: " << ex.what() << "\n";
      return 2;
    }
    par::set_num_threads(static_cast<int>(threads));
  }
  if (cli.get_bool("sched", false)) par::set_kernel_mode(par::Mode::sched);
  std::size_t absorb_min = 0;  // fixed gather threshold; 0 = drain eagerly
  if (cli.has("absorb-min"))
    absorb_min = static_cast<std::size_t>(require_positive(cli, "absorb-min", 0));
  core::IngestProfile profile = core::IngestProfile::balanced;
  if (cli.has("ingest-profile")) {
    try {
      profile = bench::parse_ingest_profile(cli.get("ingest-profile", ""));
    } catch (const std::exception& ex) {
      std::cerr << ex.what() << "\n";
      return 2;
    }
  }
  const NodeId cells = 4096;  // cell towers in the region

  // Live exporters (src/obs): JSON-lines metrics samples + a Prometheus
  // dump, and a chrome://tracing dump of structural events at exit.
  const std::string metrics_out = cli.get("metrics-out", "");
  const auto metrics_interval_ms = static_cast<std::uint64_t>(
      require_positive(cli, "metrics-interval-ms", 500));
  const std::string trace_out = cli.get("trace-out", "");
  const bench::ObsSession obs(metrics_out, metrics_interval_ms, trace_out);

  auto pool = pmem::PmemPool::create({.path = "", .size = 256 << 20});
  core::DgapOptions options;
  options.init_vertices = cells;
  options.init_edges = num_events;
  options.ingest_profile = profile;
  // Only the absorber threads write the store (+1 slack for recovery paths
  // driven from the main thread).
  options.max_writer_threads = static_cast<std::uint32_t>(absorbers + 1);
  auto graph = core::DgapStore::create(*pool, options);

  ingest::AsyncIngestor::Options iopts;
  iopts.absorbers = static_cast<std::size_t>(absorbers);
  iopts.queues = static_cast<std::size_t>(absorbers) * 2;
  // Paced event feeds are exactly the trickle<->flood regime the
  // arrival-rate autotuner targets: big gathers while a burst lasts,
  // immediate drains between bursts. A fixed --absorb-min is the
  // hand-tuned alternative it is measured against.
  iopts.autotune = autotune;
  if (!autotune) iopts.absorb_min_edges = absorb_min;
  auto ingestor = ingest::make_dgap_ingestor(*graph, iopts);

  // Traffic events: skewed, like real cellular hotspots.
  EdgeStream events = symmetrize(generate_rmat(cells, num_events / 2, 99));
  const std::span<const Edge> all = events.all();

  // P producer front-ends, each pacing its share of the feed like a live
  // event stream; submit() copies the batch into staging and returns
  // immediately (or blocks briefly on queue backpressure).
  constexpr std::size_t kSubmitBatch = 512;
  std::atomic<int> producers_done{0};
  std::vector<std::thread> feeds;
  feeds.reserve(static_cast<std::size_t>(producers));
  const std::size_t chunks = (all.size() + kSubmitBatch - 1) / kSubmitBatch;
  for (int p = 0; p < producers; ++p) {
    feeds.emplace_back([&, p] {
      for (std::size_t c = static_cast<std::size_t>(p); c < chunks;
           c += static_cast<std::size_t>(producers)) {
        const std::size_t begin = c * kSubmitBatch;
        ingestor->submit(all.subspan(
            begin, std::min(kSubmitBatch, all.size() - begin)));
        spin_wait_ns(1'500'000);  // ~1.5 ms pacing per 512 events
      }
      producers_done.fetch_add(1, std::memory_order_release);
    });
  }

  if (incremental)
    std::cout << "round  absorbed   rate(e/s)  p99(us)     delta    active  "
                 "clusters  top hotspots (cell:score)\n";
  else
    std::cout << "round  absorbed   rate(e/s)  p99(us)  clusters  "
                 "top hotspots (cell:score)\n";
  // --incremental round-over-round state: the previous round's cut and the
  // results that advanced over it (full only at round 0).
  const algorithms::PageRankParams full_pr{.iterations = 50,
                                           .tolerance = 1e-4};
  const algorithms::IncrementalPageRankParams incr_pr{
      .tolerance = full_pr.tolerance, .max_iterations = full_pr.iterations};
  std::optional<core::Snapshot> prev_cut;
  std::vector<double> prev_scores;
  std::vector<NodeId> prev_labels;
  // Delta-maintained DRAM mirror the incremental kernels sweep (built once
  // at round 0, advanced in O(delta) per round — see delta_mirror.hpp).
  std::optional<algorithms::DeltaMirror> mirror;
  // Held across the whole stream: ingestion must never stall behind it.
  std::optional<core::Snapshot> round0_snap;
  std::uint64_t round0_edges = 0;
  std::uint64_t round0_checksum = 0;
  // Per-round live telemetry: absorbed rate since the previous round and
  // the absorb-batch p99 over the same interval (histogram-snapshot delta).
  Timer live_timer;
  double prev_t = 0;
  std::uint64_t prev_absorbed = 0;
  obs::HistogramSnapshot prev_absorb_hist = ingestor->absorb_latency();
  std::uint64_t prev_steals = sched::TaskScheduler::global().stats().steals;
  for (int round = 0; round < rounds; ++round) {
    // Wait until roughly the next chunk of traffic has been absorbed.
    const std::size_t target =
        std::min(all.size(), (round + 1) * all.size() / rounds);
    bool ingest_failed = false;
    for (;;) {
      const ingest::IngestStats st = ingestor->stats();
      if (st.failed) {  // an absorber's sink threw: stop waiting for edges
        ingest_failed = true;
        break;
      }
      if (st.absorbed_edges >= target) break;
      // Feed exhausted and staging drained: nothing more will arrive.
      if (producers_done.load(std::memory_order_acquire) == producers &&
          st.absorbed_edges >= st.submitted_edges)
        break;
      std::this_thread::yield();
    }
    if (ingest_failed) break;

    core::Snapshot snap = graph->consistent_view();
    if (!round0_snap) {
      round0_snap.emplace(graph->consistent_view());
      round0_edges = round0_snap->num_edges_directed();
      for (NodeId v = 0; v < round0_snap->num_nodes(); ++v)
        round0_snap->for_each_out(
            v, [&](NodeId d) { round0_checksum += static_cast<std::uint64_t>(d) * 31 + 1; });
    }
    std::vector<double> pr;
    std::vector<NodeId> comp;
    std::uint64_t delta_edges = 0;
    std::uint64_t active = 0;
    if (!incremental) {
      pr = algorithms::pagerank(snap, {.iterations = 10});
      comp = algorithms::connected_components(snap);
    } else if (!prev_cut) {
      // Round 0: full seed at the shared residual target.
      pr = algorithms::pagerank(snap, full_pr);
      comp = algorithms::connected_components(snap);
      mirror.emplace(algorithms::DeltaMirror::build(snap));
    } else {
      const core::SnapshotDelta delta = core::snapshot_delta(*prev_cut, snap);
      mirror->apply(delta, snap);
      auto ipr = algorithms::incremental_pagerank(*mirror, delta, prev_scores,
                                                  incr_pr);
      auto icc = algorithms::incremental_cc(*mirror, delta, prev_labels);
      delta_edges = delta.delta_edges();
      active = ipr.active_vertices;
      pr = std::move(ipr.scores);
      comp = std::move(icc.labels);
    }

    std::vector<NodeId> order(static_cast<std::size_t>(snap.num_nodes()));
    for (NodeId v = 0; v < snap.num_nodes(); ++v) order[v] = v;
    std::partial_sort(order.begin(), order.begin() + 3, order.end(),
                      [&](NodeId a, NodeId b) { return pr[a] > pr[b]; });
    std::vector<bool> seen(comp.size(), false);
    int clusters = 0;
    for (NodeId v = 0; v < snap.num_nodes(); ++v) {
      if (!seen[comp[v]]) {
        seen[comp[v]] = true;
        ++clusters;
      }
    }

    const std::uint64_t absorbed_now = ingestor->stats().absorbed_edges;
    const double now = live_timer.seconds();
    const double interval = std::max(now - prev_t, 1e-9);
    const double rate =
        static_cast<double>(absorbed_now - prev_absorbed) / interval;
    const obs::HistogramSnapshot absorb_now = ingestor->absorb_latency();
    const double p99_us =
        (absorb_now - prev_absorb_hist).percentile(0.99) / 1e3;
    prev_t = now;
    prev_absorbed = absorbed_now;
    prev_absorb_hist = absorb_now;

    std::cout << std::setw(5) << round << "  " << std::setw(8)
              << absorbed_now << "  " << std::setw(9) << std::fixed
              << std::setprecision(0) << rate << "  " << std::setw(7)
              << std::setprecision(1) << p99_us << "  ";
    if (incremental)
      std::cout << std::setw(8) << delta_edges << "  " << std::setw(8)
                << active << "  ";
    std::cout << std::setw(8) << clusters << "  ";
    for (int k = 0; k < 3; ++k)
      std::cout << order[k] << ":" << std::fixed << std::setprecision(5)
                << pr[order[k]] << (k < 2 ? ", " : "\n");

    // Scheduler health for the same interval: absorbers, offloaded
    // structural work and (with --sched) the kernels all share its workers,
    // so a climbing queue depth here is the first sign analysis is starving
    // ingest.
    const sched::SchedStats ss = sched::TaskScheduler::global().stats();
    const double steals_per_s =
        static_cast<double>(ss.steals - prev_steals) / interval;
    prev_steals = ss.steals;
    std::cout << "       sched: workers=" << ss.workers << " steals/s="
              << std::fixed << std::setprecision(0) << steals_per_s
              << " queue-depth=" << ss.queue_depth << "\n";

    if (incremental) {
      // This round's results (incremental past round 0) seed the next one.
      prev_cut.emplace(std::move(snap));
      prev_scores = std::move(pr);
      prev_labels = std::move(comp);
    }
  }

  for (auto& f : feeds) f.join();
  ingest::Epoch final_epoch = 0;
  try {
    final_epoch = ingestor->drain();
  } catch (const std::exception& ex) {
    std::cerr << "ingestion failed: " << ex.what() << "\n";
    return 1;
  }
  // The long-held snapshot must still read its original cut — through all
  // the growth, rebalances and resizes the stream caused since round 0.
  if (round0_snap) {
    std::uint64_t checksum = 0;
    for (NodeId v = 0; v < round0_snap->num_nodes(); ++v)
      round0_snap->for_each_out(
          v, [&](NodeId d) { checksum += static_cast<std::uint64_t>(d) * 31 + 1; });
    if (checksum != round0_checksum) {
      std::cerr << "held round-0 snapshot drifted (checksum "
                << round0_checksum << " -> " << checksum << ")\n";
      return 1;
    }
    std::cout << "held round-0 snapshot still frozen at " << round0_edges
              << " edges (ingestion never waited on it)\n";
    round0_snap.reset();
  }
  // --incremental: advance the last round's results over one final delta to
  // the drained cut, then verify against full recomputes — CC labels must
  // match exactly, PR must sit within the shared residual bound.
  if (incremental && prev_cut) {
    const core::Snapshot final_cut = graph->consistent_view();
    const core::SnapshotDelta delta =
        core::snapshot_delta(*prev_cut, final_cut);
    mirror->apply(delta, final_cut);
    const auto ipr = algorithms::incremental_pagerank(*mirror, delta,
                                                      prev_scores, incr_pr);
    const auto icc =
        algorithms::incremental_cc(*mirror, delta, prev_labels);
    const auto fpr = algorithms::pagerank(final_cut, full_pr);
    const auto fcc = algorithms::connected_components(final_cut);
    double l1 = 0;
    for (std::size_t i = 0; i < fpr.size(); ++i)
      l1 += std::abs(ipr.scores[i] - fpr[i]);
    const double bound = 2.0 * incr_pr.tolerance / (1.0 - incr_pr.damping);
    if (icc.labels != fcc || l1 > bound) {
      std::cerr << "incremental kernels diverged from full recompute "
                << "(cc " << (icc.labels == fcc ? "match" : "MISMATCH")
                << ", pr l1=" << l1 << " bound=" << bound << ")\n";
      return 1;
    }
    std::cout << "incremental final check: delta=" << delta.delta_edges()
              << " cc identical=yes, pr l1=" << std::scientific
              << std::setprecision(2) << l1 << " (bound " << bound << ")"
              << std::defaultfloat << "\n";
  }

  const ingest::IngestStats is = ingestor->stats();
  std::cout << "stream drained; total edges " << graph->num_edge_slots()
            << "\n"
            << "ingest: submitted=" << is.submitted_edges
            << " absorbed=" << is.absorbed_edges << " epochs=" << final_epoch
            << " absorb-batches=" << is.absorb_batches
            << " stalls=" << is.stalls
            << " queue-high-watermark=" << is.queue_high_watermark
            << " avg-absorb-batch="
            << (is.absorb_batches > 0 ? is.absorbed_edges / is.absorb_batches
                                      : 0)
            << "\n";
  if (is.absorbed_edges != all.size()) {
    std::cerr << "lost events: absorbed " << is.absorbed_edges << " of "
              << all.size() << "\n";
    return 1;
  }
  return 0;
}

// Quickstart: the 60-second tour of the DGAP public API.
//
//   1. create a persistent pool and a DGAP store inside it,
//   2. stream edge insertions (and a deletion),
//   3. take a consistent snapshot and run analysis while updates continue,
//   4. shut down gracefully and reopen.
//
// Run:  ./examples/quickstart [--pool /tmp/quickstart.pool]
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "src/algorithms/pagerank.hpp"
#include "src/common/cli.hpp"
#include "src/core/dgap_store.hpp"
#include "src/graph/generators.hpp"

using namespace dgap;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::string pool_path = cli.get("pool", "/tmp/dgap_quickstart.pool");
  std::filesystem::remove(pool_path);

  // --- 1. pool + store -------------------------------------------------------
  auto pool = pmem::PmemPool::create({.path = pool_path, .size = 64 << 20});
  core::DgapOptions options;
  options.init_vertices = 1000;  // estimates: the store grows past both
  options.init_edges = 10000;
  auto graph = core::DgapStore::create(*pool, options);

  // --- 2. updates -------------------------------------------------------------
  // Insert a small synthetic social network (edges arrive shuffled, exactly
  // like a live stream would).
  EdgeStream stream = symmetrize(generate_rmat(1000, 5000, /*seed=*/7));
  stream.shuffle(42);
  // Batched ingestion: one call absorbs the whole span with per-section
  // lock acquisition and coalesced flush epochs (equivalent to inserting
  // each edge in order, just faster).
  graph->insert_batch(stream.edges());

  graph->insert_edge(0, 999);  // single-edge API
  graph->delete_edge(0, 999);  // deletion = tombstone re-insert

  std::cout << "loaded " << graph->num_nodes() << " vertices, "
            << graph->num_edge_slots() << " edge slots\n";

  // --- 3. consistent analysis -------------------------------------------------
  // A snapshot freezes every vertex's degree; concurrent writers do not
  // disturb it (paper §3.1.3). NOTE the scope: a Snapshot pins the store's
  // vertex table and must be destroyed before the store is.
  {
    const core::Snapshot snap = graph->consistent_view();
    graph->insert_edge(1, 2);  // happens after the snapshot: invisible to it

    const auto scores = algorithms::pagerank(snap);
    NodeId top = 0;
    for (NodeId v = 1; v < snap.num_nodes(); ++v)
      if (scores[v] > scores[top]) top = v;
    std::cout << "highest PageRank vertex: " << top << " (score "
              << scores[top] << ")\n";

    std::cout << "vertex 0 neighbors via snapshot:";
    snap.for_each_out(0, [](NodeId d) { std::cout << ' ' << d; });
    std::cout << "\n";
  }

  // --- 4. shutdown + reopen ---------------------------------------------------
  graph->shutdown();
  graph.reset();
  pool.reset();

  auto pool2 = pmem::PmemPool::open({.path = pool_path});
  auto graph2 = core::DgapStore::open(*pool2, options);
  std::cout << "reopened: " << graph2->num_nodes() << " vertices, "
            << graph2->num_edge_slots() << " edge slots\n";

  std::filesystem::remove(pool_path);
  return 0;
}

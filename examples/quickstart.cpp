// Quickstart: the 60-second tour of the DGAP public API.
//
//   1. create a persistent pool and a DGAP store inside it,
//   2. stream edge insertions (and a deletion),
//   3. take a consistent snapshot and run analysis while updates continue,
//   4. shut down gracefully and reopen.
//
// Run:  ./examples/quickstart [--pool /tmp/quickstart.pool]
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "src/algorithms/pagerank.hpp"
#include "src/common/cli.hpp"
#include "src/core/store_lifecycle.hpp"
#include "src/graph/generators.hpp"

using namespace dgap;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::string pool_path = cli.get("pool", "/tmp/dgap_quickstart.pool");
  std::filesystem::remove(pool_path);

  // --- 1. pool + store -------------------------------------------------------
  // A StoreHandle pairs the persistent pool with the store living inside it
  // (store_lifecycle.hpp); create = fresh pool + fresh store in one call.
  core::DgapOptions options;
  options.init_vertices = 1000;  // estimates: the store grows past both
  options.init_edges = 10000;
  core::StoreHandle db =
      core::create_store({.path = pool_path, .size = 64 << 20}, options);
  auto& graph = db.store;

  // --- 2. updates -------------------------------------------------------------
  // Insert a small synthetic social network (edges arrive shuffled, exactly
  // like a live stream would).
  EdgeStream stream = symmetrize(generate_rmat(1000, 5000, /*seed=*/7));
  stream.shuffle(42);
  // Batched ingestion: one call absorbs the whole span with per-section
  // lock acquisition and coalesced flush epochs (equivalent to inserting
  // each edge in order, just faster).
  graph->insert_batch(stream.edges());

  graph->insert_edge(0, 999);  // single-edge API
  graph->delete_edge(0, 999);  // deletion = tombstone re-insert

  std::cout << "loaded " << graph->num_nodes() << " vertices, "
            << graph->num_edge_slots() << " edge slots\n";

  // --- 3. consistent analysis -------------------------------------------------
  // A snapshot freezes every vertex's degree; concurrent writers do not
  // disturb it (paper §3.1.3), and a held snapshot blocks nothing — ingest,
  // vertex growth and resizes all proceed underneath it (snapshot.hpp).
  // A snapshot should still not outlive its store: using one after the
  // store is destroyed throws std::logic_error (fail-fast, not UAF).
  {
    const core::Snapshot snap = graph->consistent_view();
    graph->insert_edge(1, 2);  // happens after the snapshot: invisible to it

    const auto scores = algorithms::pagerank(snap);
    NodeId top = 0;
    for (NodeId v = 1; v < snap.num_nodes(); ++v)
      if (scores[v] > scores[top]) top = v;
    std::cout << "highest PageRank vertex: " << top << " (score "
              << scores[top] << ")\n";

    std::cout << "vertex 0 neighbors via snapshot:";
    snap.for_each_out(0, [](NodeId d) { std::cout << ' ' << d; });
    std::cout << "\n";
  }

  // --- 4. shutdown + reopen ---------------------------------------------------
  // Graceful close (shutdown image + NORMAL_SHUTDOWN), then reattach: open
  // takes the fast path after a clean shutdown, full recovery after a crash.
  core::shutdown_store(db);

  core::StoreHandle db2 = core::open_store({.path = pool_path}, options);
  std::cout << "reopened: " << db2.store->num_nodes() << " vertices, "
            << db2.store->num_edge_slots() << " edge slots\n";

  std::filesystem::remove(pool_path);
  return 0;
}

// Crash-recovery demo: watch DGAP survive a power failure.
//
// Uses the shadow-mode pool — a strict crash simulator where only
// explicitly persisted cache lines survive — to kill the store at a random
// point mid-ingest (often in the middle of a PMA rebalance), then runs the
// paper's recovery pipeline (§3.1.5): undo-log replay, edge-array scan,
// edge-log scan, re-issued rebalancing. Finally it verifies that every
// acknowledged edge survived.
//
// Run:  ./examples/crash_recovery_demo [--edges 50000] [--crash-at 30000]
#include <iostream>
#include <map>

#include "src/common/cli.hpp"
#include "src/common/timer.hpp"
#include "src/core/dgap_store.hpp"
#include "src/graph/adj_graph.hpp"
#include "src/graph/generators.hpp"

using namespace dgap;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto edges = static_cast<std::uint64_t>(cli.get_int("edges", 50000));
  const auto crash_at =
      static_cast<std::uint64_t>(cli.get_int("crash-at", 30000));

  auto pool = pmem::PmemPool::create(
      {.path = "", .size = 128 << 20, .shadow = true});
  core::DgapOptions options;
  options.init_vertices = 2048;
  options.init_edges = edges;
  options.segment_slots = 128;  // small sections: rebalances are frequent
  auto graph = core::DgapStore::create(*pool, options);

  EdgeStream stream = symmetrize(generate_rmat(2048, edges / 2, 31337));
  AdjGraph acknowledged(stream.num_vertices());

  std::cout << "ingesting " << stream.num_edges()
            << " edges; crash armed after " << crash_at
            << " persistent flushes...\n";
  pool->arm_crash_after(crash_at);
  std::size_t acked = 0;
  bool crashed = false;
  try {
    for (const Edge& e : stream.edges()) {
      graph->insert_edge(e.src, e.dst);
      acknowledged.add_edge(e.src, e.dst);
      ++acked;
    }
  } catch (const pmem::PmemPool::CrashInjected&) {
    crashed = true;
  }
  pool->disarm_crash();
  std::cout << (crashed ? "CRASH" : "no crash") << " after " << acked
            << " acknowledged inserts (rebalances so far: "
            << graph->stats().rebalances << ")\n";

  // Power loss: volatile state gone, unpersisted lines gone.
  graph.reset();
  pool->simulate_crash();

  Timer t;
  auto recovered = core::DgapStore::open(*pool, options);
  std::cout << "recovered in " << t.millis() << " ms\n";

  std::string why;
  if (!recovered->check_invariants(&why)) {
    std::cerr << "INVARIANT VIOLATION: " << why << "\n";
    return 1;
  }

  // Every acknowledged edge must be present (the one in-flight insert may
  // legitimately appear as an extra).
  const core::Snapshot snap = recovered->consistent_view();
  std::uint64_t missing = 0;
  std::uint64_t extra = 0;
  for (NodeId v = 0; v < acknowledged.num_nodes(); ++v) {
    std::map<NodeId, std::int64_t> balance;
    for (const NodeId d : acknowledged.out_neigh(v)) balance[d] += 1;
    for (const NodeId d : snap.neighbors(v)) balance[d] -= 1;
    for (const auto& [dst, count] : balance) {
      if (count > 0) missing += static_cast<std::uint64_t>(count);
      if (count < 0) extra += static_cast<std::uint64_t>(-count);
    }
  }
  std::cout << "acknowledged edges missing after recovery: " << missing
            << " (must be 0)\n"
            << "unacknowledged in-flight edges present:     " << extra
            << " (may be 0 or 1)\n";

  // And the store keeps working.
  recovered->insert_edge(1, 2);
  std::cout << "post-recovery insert OK; store operational.\n";
  return missing == 0 ? 0 : 1;
}

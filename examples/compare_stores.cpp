// Side-by-side comparison of all six graph systems on one workload — a
// miniature of the paper's whole evaluation in a single run: load the same
// shuffled stream everywhere, print insert throughput, then run the four
// GAPBS kernels and print runtimes (normalized to CSR).
//
// A sharded-DGAP row (S independent shard pools, composed snapshots —
// src/core/sharded_store.hpp) rides along so the quickstart path shows the
// scaling store too.
//
// Run:  ./examples/compare_stores [--dataset orkut] [--scale 0.05]
//                                 [--shards 2] [--ingest-profile balanced]
#include <iostream>

#include "src/bench_common/harness.hpp"
#include "src/common/table.hpp"
#include "src/graph/datasets.hpp"

using namespace dgap;
using namespace dgap::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::string dataset = cli.get("dataset", "orkut");
  const double scale = cli.get_double("scale", 0.05);
  const bool latency = cli.get_bool("latency", true);
  int shards = 2;
  StoreTuning tuning;
  try {
    if (cli.has("shards"))
      shards = static_cast<int>(parse_positive_int_capped(
          cli.get("shards", ""), "--shards", kMaxShardsCli));
    if (cli.has("ingest-profile"))
      tuning.profile = parse_ingest_profile(cli.get("ingest-profile", ""));
  } catch (const std::exception& ex) {
    std::cerr << ex.what() << "\n";
    return 2;
  }
  configure_latency(latency);

  EdgeStream stream = load_dataset(dataset, scale);
  std::cout << "dataset " << dataset << " @ scale " << scale << ": "
            << stream.num_vertices() << " vertices, " << stream.num_edges()
            << " directed edges (PM latency model "
            << (latency ? "on" : "off") << ")\n\n";

  auto csr_pool = fresh_pool(512);
  auto csr = make_csr(*csr_pool, stream);
  const NodeId source = csr->pick_source();
  const double csr_pr = csr->time_pagerank(2);
  const double csr_bfs = csr->time_bfs(2, source);
  const double csr_bc = csr->time_bc(2, source);
  const double csr_cc = csr->time_cc(2);

  TablePrinter table({"System", "Insert MEPS", "PR xCSR", "BFS xCSR",
                      "BC xCSR", "CC xCSR"});
  table.add_row({"CSR(static)", "-", "1.00", "1.00", "1.00", "1.00"});
  for (const auto& sys : kDynamicSystems) {
    auto pool = fresh_pool(512);
    auto store = make_store(sys, *pool, stream.num_vertices(),
                            stream.num_edges(), 1, tuning);
    const InsertResult ins = time_inserts(
        stream, [&](NodeId u, NodeId v) { store->insert(u, v); });
    store->finalize();
    table.add_row({sys, TablePrinter::fmt(ins.meps),
                   TablePrinter::fmt(store->time_pagerank(2) / csr_pr),
                   TablePrinter::fmt(store->time_bfs(2, source) / csr_bfs),
                   TablePrinter::fmt(store->time_bc(2, source) / csr_bc),
                   TablePrinter::fmt(store->time_cc(2) / csr_cc)});
  }

  // Sharded DGAP: same workload across `shards` independent shard pools;
  // the kernels run over the composed per-shard snapshots.
  {
    auto store = make_sharded_store(shards, stream.num_vertices(),
                                    stream.num_edges(), 1, 512, tuning);
    const InsertResult ins = time_inserts(
        stream, [&](NodeId u, NodeId v) { store->insert(u, v); });
    table.add_row({"dgap-sh" + std::to_string(shards),
                   TablePrinter::fmt(ins.meps),
                   TablePrinter::fmt(store->time_pagerank(2) / csr_pr),
                   TablePrinter::fmt(store->time_bfs(2, source) / csr_bfs),
                   TablePrinter::fmt(store->time_bc(2, source) / csr_bc),
                   TablePrinter::fmt(store->time_cc(2) / csr_cc)});
  }
  table.print(std::cout);
  std::cout << "\nLower xCSR is better (CSR is the static analysis "
               "optimum); higher MEPS is better.\n";
  return 0;
}

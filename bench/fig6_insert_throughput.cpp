// Figure 6: dynamic graph insertion throughput (MEPS), single writer
// thread, all five dynamic systems across the six paper graphs.
//
// Method (paper §4.1/§4.2): shuffled edge stream, first 10% inserted as
// warm-up, remaining 90% timed. Higher is better. Expected shape: DGAP best
// or near-best everywhere; GraphOne-FD slowest on big graphs; LLAMA hurt by
// snapshot conversion cost; XPGraph close to DGAP.
//
// --batch=a,b,c sweeps ingestion batch sizes (one table per size); batch 1
// is the per-edge path, larger sizes drive every system's native
// insert_batch. When larger sizes are requested the per-edge reference is
// always measured too and a DGAP speedup-vs-per-edge summary is printed,
// so `--batch=256` directly reports the batching gain. Expected: DGAP
// gains grow with batch size as more of a batch shares a home section —
// the batch path collapses per-edge section locking and per-edge
// flush+fence epochs into per-group ones.
#include <iostream>
#include <map>

#include "src/bench_common/harness.hpp"
#include "src/common/table.hpp"
#include "src/graph/datasets.hpp"

using namespace dgap;
using namespace dgap::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchConfig cfg = parse_common(
      cli, /*default_scale=*/0.2,
      {"orkut", "livejournal", "citpatents", "twitter", "friendster",
       "protein"});
  configure_latency(cfg.latency);
  print_banner("Figure 6: insertion throughput (MEPS), 1 writer thread",
               cfg);

  // Batched runs are always compared against the per-edge path.
  std::vector<std::size_t> batches = cfg.batches;
  if (std::find(batches.begin(), batches.end(), std::size_t{1}) ==
      batches.end())
    batches.insert(batches.begin(), 1);

  // Load each dataset once; the batch sweep reuses the same stream.
  std::map<std::string, EdgeStream> streams;
  for (const auto& name : cfg.datasets)
    streams.emplace(name, load_dataset(name, cfg.scale));

  std::map<std::pair<std::string, std::size_t>, double> dgap_meps;
  for (const std::size_t batch : batches) {
    if (batches.size() > 1) std::cout << "\n--- batch=" << batch << " ---\n";
    TablePrinter table(
        {"Graph", "DGAP", "BAL", "LLAMA", "GraphOne-FD", "XPGraph"});
    for (const auto& name : cfg.datasets) {
      const EdgeStream& stream = streams.at(name);
      std::vector<std::string> row = {name};
      for (const auto& sys : kDynamicSystems) {
        if (!cfg.only_system.empty() && sys != cfg.only_system) {
          row.push_back("-");
          continue;
        }
        auto pool = fresh_pool(cfg.pool_mb);
        auto store = make_store(sys, *pool, stream.num_vertices(),
                                stream.num_edges(), 1);
        const InsertResult r =
            batch <= 1
                ? time_inserts(stream, [&](NodeId u, NodeId v) {
                    store->insert(u, v);
                  })
                : time_inserts_batched(
                      stream, batch, [&](std::span<const Edge> part) {
                        store->insert_batch(part);
                      });
        if (sys == "dgap") dgap_meps[{name, batch}] = r.meps;
        row.push_back(TablePrinter::fmt(r.meps));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }

  if (batches.size() > 1 &&
      (cfg.only_system.empty() || cfg.only_system == "dgap")) {
    std::cout << "\n--- DGAP speedup vs per-edge path ---\n";
    std::vector<std::string> header = {"Graph"};
    for (const std::size_t b : batches)
      if (b > 1) header.push_back("batch=" + std::to_string(b));
    TablePrinter speedup(header);
    for (const auto& name : cfg.datasets) {
      std::vector<std::string> row = {name};
      const double base = dgap_meps[{name, 1}];
      for (const std::size_t b : batches) {
        if (b <= 1) continue;
        row.push_back(base > 0
                          ? TablePrinter::fmt(dgap_meps[{name, b}] / base)
                          : "-");
      }
      speedup.add_row(std::move(row));
    }
    speedup.print(std::cout);
  }
  return 0;
}

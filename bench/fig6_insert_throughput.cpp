// Figure 6: dynamic graph insertion throughput (MEPS), single writer
// thread, all five dynamic systems across the six paper graphs.
//
// Method (paper §4.1/§4.2): shuffled edge stream, first 10% inserted as
// warm-up, remaining 90% timed. Higher is better. Expected shape: DGAP best
// or near-best everywhere; GraphOne-FD slowest on big graphs; LLAMA hurt by
// snapshot conversion cost; XPGraph close to DGAP.
#include <iostream>

#include "src/bench_common/harness.hpp"
#include "src/common/table.hpp"
#include "src/graph/datasets.hpp"

using namespace dgap;
using namespace dgap::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchConfig cfg = parse_common(
      cli, /*default_scale=*/0.2,
      {"orkut", "livejournal", "citpatents", "twitter", "friendster",
       "protein"});
  configure_latency(cfg.latency);
  print_banner("Figure 6: insertion throughput (MEPS), 1 writer thread",
               cfg);

  TablePrinter table(
      {"Graph", "DGAP", "BAL", "LLAMA", "GraphOne-FD", "XPGraph"});
  for (const auto& name : cfg.datasets) {
    EdgeStream stream = load_dataset(name, cfg.scale);
    std::vector<std::string> row = {name};
    for (const auto& sys : kDynamicSystems) {
      if (!cfg.only_system.empty() && sys != cfg.only_system) {
        row.push_back("-");
        continue;
      }
      auto pool = fresh_pool(cfg.pool_mb);
      auto store = make_store(sys, *pool, stream.num_vertices(),
                              stream.num_edges(), 1);
      const InsertResult r = time_inserts(
          stream, [&](NodeId u, NodeId v) { store->insert(u, v); });
      row.push_back(TablePrinter::fmt(r.meps));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  return 0;
}

// Figure 6: dynamic graph insertion throughput (MEPS), single writer
// thread, all five dynamic systems across the six paper graphs.
//
// Method (paper §4.1/§4.2): shuffled edge stream, first 10% inserted as
// warm-up, remaining 90% timed. Higher is better. Expected shape: DGAP best
// or near-best everywhere; GraphOne-FD slowest on big graphs; LLAMA hurt by
// snapshot conversion cost; XPGraph close to DGAP.
//
// --batch=a,b,c sweeps ingestion batch sizes (one table per size); batch 1
// is the per-edge path, larger sizes drive every system's native
// insert_batch. When larger sizes are requested the per-edge reference is
// always measured too and a DGAP speedup-vs-per-edge summary is printed,
// so `--batch=256` directly reports the batching gain. Expected: DGAP
// gains grow with batch size as more of a batch shares a home section —
// the batch path collapses per-edge section locking and per-edge
// flush+fence epochs into per-group ones.
//
// --shards=a,b,c adds a sharded-DGAP sweep (src/core/sharded_store.hpp):
// the vertex-id space is partitioned across S independent DGAP shards, each
// in its own pool with its own locks and rebalance domain. The S=1 baseline
// is always measured and a sharded-vs-unsharded speedup table printed; when
// --async-writers is also given, the async sweep runs over the sharded
// store too (staging queues routed shard-exclusively, absorbers draining
// different shards in full parallel — the NUMA-ready split).
//
// --async-writers=a,b sweeps the asynchronous ingestion subsystem
// (src/ingest): one producer submits chunks to per-section-group staging
// queues, K background absorbers drain them through insert_batch, and the
// timed body includes the final drain (equal total work vs sync). The
// absorbers coalesce staged submissions into larger absorption batches, so
// async end-to-end throughput should meet or beat the synchronous
// insert_batch path at the same submit-chunk size; the producer-side
// (submit-only) throughput is reported separately.
#include <iostream>
#include <map>

#include "src/bench_common/harness.hpp"
#include "src/common/table.hpp"
#include "src/graph/datasets.hpp"

using namespace dgap;
using namespace dgap::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  BenchConfig cfg;
  try {
    cfg = parse_common(
        cli, /*default_scale=*/0.2,
        {"orkut", "livejournal", "citpatents", "twitter", "friendster",
         "protein"});
  } catch (const std::exception& ex) {
    std::cerr << cli.program() << ": " << ex.what() << "\n";
    return 2;
  }
  configure_latency(cfg.latency);
  print_banner("Figure 6: insertion throughput (MEPS), 1 writer thread",
               cfg);
  const ObsSession obs(cfg);

  // Batched runs are always compared against the per-edge path.
  std::vector<std::size_t> batches = cfg.batches;
  if (std::find(batches.begin(), batches.end(), std::size_t{1}) ==
      batches.end())
    batches.insert(batches.begin(), 1);
  // The async sweep compares against the synchronous batch path at the same
  // submit-chunk size, so make sure at least one batched size is measured.
  if (!cfg.async_writers.empty() && batches.size() == 1)
    batches.push_back(256);

  // Load each dataset once; the batch sweep reuses the same stream.
  std::map<std::string, EdgeStream> streams;
  for (const auto& name : cfg.datasets)
    streams.emplace(name, load_dataset(name, cfg.scale));

  std::map<std::pair<std::string, std::size_t>, double> dgap_meps;
  for (const std::size_t batch : batches) {
    if (batches.size() > 1) std::cout << "\n--- batch=" << batch << " ---\n";
    TablePrinter table(
        {"Graph", "DGAP", "BAL", "LLAMA", "GraphOne-FD", "XPGraph"});
    for (const auto& name : cfg.datasets) {
      const EdgeStream& stream = streams.at(name);
      std::vector<std::string> row = {name};
      for (const auto& sys : kDynamicSystems) {
        if (!cfg.only_system.empty() && sys != cfg.only_system) {
          row.push_back("-");
          continue;
        }
        auto pool = fresh_pool(cfg.pool_mb);
        auto store = make_store(sys, *pool, stream.num_vertices(),
                                stream.num_edges(), 1, cfg.tuning);
        const InsertResult r =
            batch <= 1
                ? time_inserts(stream, [&](NodeId u, NodeId v) {
                    store->insert(u, v);
                  })
                : time_inserts_batched(
                      stream, batch, [&](std::span<const Edge> part) {
                        store->insert_batch(part);
                      });
        if (sys == "dgap") dgap_meps[{name, batch}] = r.meps;
        row.push_back(TablePrinter::fmt(r.meps));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }

  if (batches.size() > 1 &&
      (cfg.only_system.empty() || cfg.only_system == "dgap")) {
    std::cout << "\n--- DGAP speedup vs per-edge path ---\n";
    std::vector<std::string> header = {"Graph"};
    for (const std::size_t b : batches)
      if (b > 1) header.push_back("batch=" + std::to_string(b));
    TablePrinter speedup(header);
    for (const auto& name : cfg.datasets) {
      std::vector<std::string> row = {name};
      const double base = dgap_meps[{name, 1}];
      for (const std::size_t b : batches) {
        if (b <= 1) continue;
        row.push_back(base > 0
                          ? TablePrinter::fmt(dgap_meps[{name, b}] / base)
                          : "-");
      }
      speedup.add_row(std::move(row));
    }
    speedup.print(std::cout);
  }

  // --- asynchronous ingestion sweep (--async-writers=a,b) -------------------
  std::vector<std::size_t> async_batches;
  for (const std::size_t b : batches)
    if (b > 1) async_batches.push_back(b);
  for (const int absorbers : cfg.async_writers) {
    for (const std::size_t batch : async_batches) {
      std::cout << "\n--- async: absorbers=" << absorbers
                << " submit-batch=" << batch << " (end-to-end MEPS) ---\n";
      TablePrinter table(
          {"Graph", "DGAP", "BAL", "LLAMA", "GraphOne-FD", "XPGraph"});
      std::map<std::string, AsyncInsertResult> dgap_async;
      std::map<std::string, double> dgap_avg_absorb;
      for (const auto& name : cfg.datasets) {
        const EdgeStream& stream = streams.at(name);
        std::vector<std::string> row = {name};
        for (const auto& sys : kDynamicSystems) {
          if (!cfg.only_system.empty() && sys != cfg.only_system) {
            row.push_back("-");
            continue;
          }
          auto pool = fresh_pool(cfg.pool_mb);
          // writer_threads = absorber count: the absorbers are the only
          // threads that touch the store.
          auto store = make_store(sys, *pool, stream.num_vertices(),
                                  stream.num_edges(), absorbers, cfg.tuning);
          auto ingestor = store->make_async(async_options(cfg, absorbers));
          const AsyncInsertResult r =
              time_inserts_async(stream, /*producers=*/1, batch, *ingestor);
          if (sys == "dgap") {
            dgap_async[name] = r;
            const ingest::IngestStats st = ingestor->stats();
            dgap_avg_absorb[name] =
                st.absorb_batches > 0
                    ? static_cast<double>(st.absorbed_edges) /
                          static_cast<double>(st.absorb_batches)
                    : 0.0;
          }
          row.push_back(TablePrinter::fmt(r.meps));
        }
        table.add_row(std::move(row));
      }
      table.print(std::cout);

      if (cfg.only_system.empty() || cfg.only_system == "dgap") {
        std::cout << "\n--- DGAP async (absorbers=" << absorbers
                  << (cfg.autotune ? ", autotune" : "")
                  << ") vs sync insert_batch, batch=" << batch << " ---\n";
        TablePrinter cmp({"Graph", "sync MEPS", "async MEPS", "speedup",
                          "submit-side MEPS", "avg absorb batch"});
        for (const auto& name : cfg.datasets) {
          const double sync = dgap_meps[{name, batch}];
          const AsyncInsertResult& r = dgap_async[name];
          cmp.add_row({name, TablePrinter::fmt(sync),
                       TablePrinter::fmt(r.meps),
                       sync > 0 ? TablePrinter::fmt(r.meps / sync) : "-",
                       TablePrinter::fmt(r.submit_meps),
                       TablePrinter::fmt(dgap_avg_absorb[name])});
        }
        cmp.print(std::cout);
      }
    }
  }

  // --- sharded DGAP sweep (--shards=a,b) ------------------------------------
  if (!cfg.shards.empty() &&
      (cfg.only_system.empty() || cfg.only_system == "dgap")) {
    const std::vector<int> shard_counts = sharded_sweep_counts(cfg);
    const std::size_t max_batch =
        *std::max_element(batches.begin(), batches.end());
    const std::size_t batch = max_batch > 1 ? max_batch : 256;

    std::cout << "\n--- DGAP sharded: sync insert_batch, batch=" << batch
              << " (MEPS; speedup vs S=1) ---\n";
    print_sharded_sweep(
        cfg, shard_counts,
        [&](const std::string& name, int s) {
          const EdgeStream& stream = streams.at(name);
          auto store =
              make_sharded_store(s, stream.num_vertices(), stream.num_edges(),
                                 1, cfg.pool_mb, cfg.tuning);
          return time_inserts_batched(stream, batch,
                                      [&](std::span<const Edge> part) {
                                        store->insert_batch(part);
                                      })
              .meps;
        },
        std::cout);

    for (const int absorbers : cfg.async_writers) {
      std::cout << "\n--- DGAP sharded async: absorbers=" << absorbers
                << " submit-batch=" << batch
                << " (end-to-end MEPS; speedup vs S=1) ---\n";
      print_sharded_sweep(
          cfg, shard_counts,
          [&](const std::string& name, int s) {
            const EdgeStream& stream = streams.at(name);
            auto store = make_sharded_store(s, stream.num_vertices(),
                                            stream.num_edges(), absorbers,
                                            cfg.pool_mb, cfg.tuning);
            auto ingestor = store->make_async(async_options(cfg, absorbers));
            return time_inserts_async(stream, /*producers=*/1, batch,
                                      *ingestor)
                .meps;
          },
          std::cout);
    }
  }
  return 0;
}

// Table 3: insertion throughput (MEPS) with 1, 8 and 16 writer threads for
// every system and graph.
//
// Expected shape (paper §4.2.1): DGAP scales with threads and is best or
// near-best; BAL occasionally wins thanks to per-vertex locks; XPGraph wins
// on the three small graphs whose entire edge set fits in its circular log.
// NOTE: this container exposes 2 hardware threads — counts above that
// oversubscribe, so absolute scaling tops out early (recorded in
// EXPERIMENTS.md).
//
// --async-writers=a,b adds an async-ingestion sweep: the T thread counts
// become producer counts submitting to the staging queues while K
// background absorbers drain into each store (src/ingest).
//
// --shards=a,b adds a sharded-DGAP scalability sweep: T concurrent writers
// drive insert_batch against S independent shards (writers touching
// different shards share no section lock, fence or rebalance domain); S=1
// is always measured as the speedup baseline.
#include <iostream>
#include <map>
#include <mutex>

#include "src/bench_common/harness.hpp"
#include "src/common/spinlock.hpp"
#include "src/common/table.hpp"
#include "src/graph/datasets.hpp"

using namespace dgap;
using namespace dgap::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  BenchConfig cfg;
  try {
    cfg = parse_common(
        cli, /*default_scale=*/0.1,
        {"orkut", "livejournal", "citpatents", "twitter", "friendster",
         "protein"});
  } catch (const std::exception& ex) {
    std::cerr << cli.program() << ": " << ex.what() << "\n";
    return 2;
  }
  configure_latency(cfg.latency);
  print_banner("Table 3: insert scalability (MEPS) across writer threads",
               cfg);
  const ObsSession obs(cfg);

  std::vector<int> thread_counts = {1, 8, 16};
  if (cli.has("threads")) {
    thread_counts.clear();
    for (const auto& t : split_csv(cli.get("threads")))
      thread_counts.push_back(std::stoi(t));
  }

  // Load each dataset once; the batch/thread/async sweeps reuse the stream.
  std::map<std::string, EdgeStream> streams;
  for (const auto& name : cfg.datasets)
    streams.emplace(name, load_dataset(name, cfg.scale));

  for (const std::size_t batch : cfg.batches) {
    for (const int threads : thread_counts) {
      std::cout << "\n--- T" << threads;
      if (cfg.batches.size() > 1 || batch > 1) std::cout << " batch=" << batch;
      std::cout << " ---\n";
      TablePrinter table(
          {"Graph", "DGAP", "BAL", "LLAMA", "GO-FD", "XPGrp"});
      for (const auto& name : cfg.datasets) {
        const EdgeStream& stream = streams.at(name);
        std::vector<std::string> row = {name};
        for (const auto& sys : kDynamicSystems) {
          if (!cfg.only_system.empty() && sys != cfg.only_system) {
            row.push_back("-");
            continue;
          }
          auto pool = fresh_pool(cfg.pool_mb);
          auto store = make_store(sys, *pool, stream.num_vertices(),
                                  stream.num_edges(), threads, cfg.tuning);
          // LLAMA, GraphOne and our XPGraph model serialize internal batch
          // conversion; their stores are not thread-safe for concurrent
          // writers (the paper drives them through their own ingest
          // threads). We serialize their inserts with a lock, which matches
          // their single-ingest design; DGAP/BAL take concurrent writers
          // directly.
          const bool single_ingest =
              sys == "llama" || sys == "graphone" || sys == "xpgraph";
          InsertResult r;
          if (batch <= 1) {
            if (single_ingest) {
              SpinLock mu;
              r = time_inserts_mt(stream, threads, [&](NodeId u, NodeId v) {
                std::lock_guard<SpinLock> g(mu);
                store->insert(u, v);
              });
            } else {
              r = time_inserts_mt(stream, threads, [&](NodeId u, NodeId v) {
                store->insert(u, v);
              });
            }
          } else {
            if (single_ingest) {
              SpinLock mu;
              r = time_inserts_mt_batched(
                  stream, threads, batch, [&](std::span<const Edge> part) {
                    std::lock_guard<SpinLock> g(mu);
                    store->insert_batch(part);
                  });
            } else {
              r = time_inserts_mt_batched(
                  stream, threads, batch, [&](std::span<const Edge> part) {
                    store->insert_batch(part);
                  });
            }
          }
          row.push_back(TablePrinter::fmt(r.meps));
        }
        table.add_row(std::move(row));
      }
      table.print(std::cout);
    }
  }

  // --- asynchronous ingestion sweep (--async-writers=a,b) -------------------
  // Producers (the T counts above) only submit to staging queues; K
  // background absorbers do the actual store writes, so single-ingest
  // systems need no caller-side lock here — the ingestor serializes their
  // sink internally.
  // Submit chunks below 256 are clamped (per-edge items would measure
  // queue overhead, not the store); dedup so --batch=64,128 does not run
  // the same async sweep twice.
  std::vector<std::size_t> submit_batches;
  for (const std::size_t batch : cfg.batches)
    submit_batches.push_back(std::max<std::size_t>(batch, 256));
  std::sort(submit_batches.begin(), submit_batches.end());
  submit_batches.erase(
      std::unique(submit_batches.begin(), submit_batches.end()),
      submit_batches.end());
  for (const int absorbers : cfg.async_writers) {
    for (const std::size_t submit_batch : submit_batches) {
      for (const int threads : thread_counts) {
        std::cout << "\n--- async P" << threads << " absorbers=" << absorbers
                  << " submit-batch=" << submit_batch << " ---\n";
        TablePrinter table(
            {"Graph", "DGAP", "BAL", "LLAMA", "GO-FD", "XPGrp"});
        for (const auto& name : cfg.datasets) {
          const EdgeStream& stream = streams.at(name);
          std::vector<std::string> row = {name};
          for (const auto& sys : kDynamicSystems) {
            if (!cfg.only_system.empty() && sys != cfg.only_system) {
              row.push_back("-");
              continue;
            }
            auto pool = fresh_pool(cfg.pool_mb);
            auto store = make_store(sys, *pool, stream.num_vertices(),
                                    stream.num_edges(), absorbers, cfg.tuning);
            auto ingestor = store->make_async(async_options(cfg, absorbers));
            const AsyncInsertResult r =
                time_inserts_async(stream, threads, submit_batch, *ingestor);
            row.push_back(TablePrinter::fmt(r.meps));
          }
          table.add_row(std::move(row));
        }
        table.print(std::cout);
      }
    }
  }

  // --- sharded DGAP sweep (--shards=a,b) ------------------------------------
  if (!cfg.shards.empty() &&
      (cfg.only_system.empty() || cfg.only_system == "dgap")) {
    const std::vector<int> shard_counts = sharded_sweep_counts(cfg);
    const std::size_t batch =
        std::max<std::size_t>(*std::max_element(cfg.batches.begin(),
                                                cfg.batches.end()),
                              256);
    for (const int threads : thread_counts) {
      std::cout << "\n--- DGAP sharded: T" << threads
                << " concurrent writers, batch=" << batch
                << " (MEPS; speedup vs S=1) ---\n";
      print_sharded_sweep(
          cfg, shard_counts,
          [&](const std::string& name, int s) {
            const EdgeStream& stream = streams.at(name);
            auto store = make_sharded_store(s, stream.num_vertices(),
                                            stream.num_edges(), threads,
                                            cfg.pool_mb, cfg.tuning);
            return time_inserts_mt_batched(stream, threads, batch,
                                           [&](std::span<const Edge> part) {
                                             store->insert_batch(part);
                                           })
                .meps;
          },
          std::cout);
    }
  }
  return 0;
}

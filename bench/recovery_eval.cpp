// §4.4 "DGAP Recovery Evaluations": normal-shutdown restart time vs
// crash-recovery time, per graph.
//
// Expected shape: normal restarts are fast and nearly size-independent
// (load the shutdown image); crash recovery scans the edge array + logs, so
// it grows with graph size but stays in seconds thanks to sequential PM
// bandwidth (paper: <1 s small graphs, ~4 s largest).
#include <filesystem>
#include <iostream>
#include <unistd.h>

#include "src/bench_common/harness.hpp"
#include "src/common/table.hpp"
#include "src/core/dgap_store.hpp"
#include "src/graph/datasets.hpp"

using namespace dgap;
using namespace dgap::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchConfig cfg = parse_common(
      cli, /*default_scale=*/0.1,
      {"orkut", "livejournal", "citpatents", "twitter", "friendster",
       "protein"});
  configure_latency(cfg.latency);
  print_banner("Recovery evaluation: normal reboot vs crash recovery", cfg);

  const auto dir = std::filesystem::temp_directory_path();
  TablePrinter table({"Graph", "Edges", "Shutdown(s)", "NormalOpen(s)",
                      "CrashOpen(s)"});

  for (const auto& name : cfg.datasets) {
    EdgeStream stream = load_dataset(name, cfg.scale);
    const std::string path =
        (dir / ("dgap_recovery_" + name + "_" + std::to_string(::getpid()) +
                ".pool"))
            .string();
    std::filesystem::remove(path);

    core::DgapOptions o;
    o.init_vertices = stream.num_vertices();
    o.init_edges = stream.num_edges();

    double shutdown_s = 0;
    double normal_open_s = 0;
    double crash_open_s = 0;
    {
      auto pool =
          pmem::PmemPool::create({.path = path, .size = cfg.pool_mb << 20});
      auto store = core::DgapStore::create(*pool, o);
      for (const Edge& e : stream.edges()) store->insert_edge(e.src, e.dst);
      Timer t;
      store->shutdown();
      shutdown_s = t.seconds();
    }
    {
      auto pool = pmem::PmemPool::open({.path = path});
      Timer t;
      auto store = core::DgapStore::open(*pool, o);
      normal_open_s = t.seconds();
      // Leave WITHOUT shutdown: the next open takes the crash path.
    }
    {
      auto pool = pmem::PmemPool::open({.path = path});
      Timer t;
      auto store = core::DgapStore::open(*pool, o);
      crash_open_s = t.seconds();
      store->shutdown();
    }
    table.add_row({name, std::to_string(stream.num_edges()),
                   TablePrinter::fmt(shutdown_s, 3),
                   TablePrinter::fmt(normal_open_s, 3),
                   TablePrinter::fmt(crash_open_s, 3)});
    std::filesystem::remove(path);
  }
  table.print(std::cout);
  return 0;
}

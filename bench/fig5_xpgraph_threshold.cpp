// Figure 5: XPGraph insertion throughput (MEPS) as a function of its
// archiving threshold, swept 2^1 .. 2^16.
//
// Expected shape: throughput rises steeply with the threshold and
// saturates — archiving cost amortizes over bigger batches. The paper picks
// 2^10 as the comparison point.
#include <iostream>

#include "src/baselines/xpgraph_store.hpp"
#include "src/bench_common/harness.hpp"
#include "src/common/table.hpp"
#include "src/graph/datasets.hpp"

using namespace dgap;
using namespace dgap::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchConfig cfg =
      parse_common(cli, /*default_scale=*/0.2, {"livejournal"});
  configure_latency(cfg.latency);
  print_banner("Figure 5: XPGraph insert MEPS vs archiving threshold", cfg);

  EdgeStream stream = load_dataset(cfg.datasets[0], cfg.scale);
  TablePrinter table({"Threshold", "MEPS"});
  for (int log2t = 1; log2t <= 16; ++log2t) {
    auto pool = fresh_pool(cfg.pool_mb);
    baselines::XpGraphStore::Options o;
    o.init_vertices = stream.num_vertices();
    o.archive_threshold = 1ull << log2t;
    // Keep the log under constant pressure so the threshold is what is
    // actually measured (otherwise a roomy log never archives at all).
    o.log_capacity_edges =
        std::max<std::uint64_t>(stream.num_edges() / 16, 1 << 14);
    auto store = baselines::XpGraphStore::create(*pool, o);
    const InsertResult r = time_inserts(
        stream, [&](NodeId u, NodeId v) { store->insert_edge(u, v); });
    table.add_row({"2^" + std::to_string(log2t),
                   TablePrinter::fmt(r.meps)});
  }
  table.print(std::cout);
  return 0;
}

// Table 4: execution time (seconds) of all four kernels on all six systems
// with 1 and 16 analysis threads.
//
// Expected shape (paper §4.3.1): everything scales with threads except CC
// (its convergence loop limits parallel speedup for every framework); DGAP
// stays closest to CSR except BFS, where the DRAM adjacency systems win.
// NOTE: 2 hardware threads here; T16 shows trend only.
// --live-ingest adds the HTAP section: async producers flood the second
// half of the stream while the analysis thread snapshots + runs PageRank
// in a loop (the epoch-versioned snapshot refactor makes both sides
// proceed without blocking each other).
// --dram-cache=MB adds a dgap-cache row (DRAM hot tier on) and fills the
// hit% column with the tier's hit rate over the row's kernel traffic.
#include <iostream>
#include <map>

#include "src/bench_common/harness.hpp"
#include "src/common/table.hpp"
#include "src/graph/datasets.hpp"

using namespace dgap;
using namespace dgap::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  BenchConfig cfg;
  try {
    cfg = parse_common(
        cli, /*default_scale=*/0.05,
        {"orkut", "livejournal", "citpatents", "twitter", "friendster",
         "protein"});
  } catch (const std::exception& ex) {
    std::cerr << cli.program() << ": " << ex.what() << "\n";
    return 2;
  }
  cfg.latency = cli.get_bool("latency", false);
  configure_latency(cfg.latency);
  print_banner("Table 4: kernel runtime (s) at T1 and T16", cfg);
  const ObsSession obs(cfg);

  std::vector<int> thread_counts = {1, 16};
  if (cli.has("threads")) {
    thread_counts.clear();
    for (const auto& t : split_csv(cli.get("threads")))
      thread_counts.push_back(std::stoi(t));
  }

  const std::vector<std::string> kernels = {"PR", "BFS", "BC", "CC"};
  for (const auto& name : cfg.datasets) {
    EdgeStream stream = load_dataset(name, cfg.scale);

    // Load every system once per graph; reuse across kernels/threads.
    auto csr_pool = fresh_pool(cfg.pool_mb);
    auto csr = make_csr(*csr_pool, stream);
    const NodeId source = csr->pick_source();

    std::vector<std::unique_ptr<pmem::PmemPool>> pools;
    std::vector<std::pair<std::string, std::unique_ptr<IStore>>> stores;
    stores.emplace_back("CSR", nullptr);  // handled via csr
    for (const auto& sys : kDynamicSystems) {
      if (!cfg.only_system.empty() && sys != cfg.only_system) continue;
      pools.push_back(fresh_pool(cfg.pool_mb));
      auto store = make_store(sys, *pools.back(), stream.num_vertices(),
                              stream.num_edges(), 1);
      for (const Edge& e : stream.edges()) store->insert(e.src, e.dst);
      store->finalize();
      stores.emplace_back(sys, std::move(store));
    }
    // --dram-cache=MB: one extra DGAP row with the DRAM hot tier on; its
    // hit rate lands in the hit% column (every other row prints "-").
    if (cfg.tuning.dram_cache_mb != 0 &&
        (cfg.only_system.empty() || cfg.only_system == "dgap")) {
      pools.push_back(fresh_pool(cfg.pool_mb));
      auto store = make_store("dgap", *pools.back(), stream.num_vertices(),
                              stream.num_edges(), 1, cfg.tuning);
      for (const Edge& e : stream.edges()) store->insert(e.src, e.dst);
      stores.emplace_back("dgap-cache", std::move(store));
    }
    // --shards=a,b: kernels over composed per-shard snapshots (analysis
    // scalability must survive partitioned ingestion).
    if (cfg.only_system.empty() || cfg.only_system == "dgap") {
      for (const int s : cfg.shards) {
        auto store = make_sharded_store(s, stream.num_vertices(),
                                        stream.num_edges(), 1, cfg.pool_mb);
        for (const Edge& e : stream.edges()) store->insert(e.src, e.dst);
        stores.emplace_back("dgap-sh" + std::to_string(s), std::move(store));
      }
    }

    std::cout << "\n--- " << name << " ---\n";
    TablePrinter table({"System", "PR.T1", "PR.T16", "BFS.T1", "BFS.T16",
                        "BC.T1", "BC.T16", "CC.T1", "CC.T16", "hit%"});
    for (auto& [sys, store] : stores) {
      IStore* s = store ? store.get() : csr.get();
      std::vector<std::string> row = {sys};
      for (const auto& kernel : kernels) {
        for (const int threads : thread_counts) {
          double t = 0;
          if (kernel == "PR") t = s->time_pagerank(threads);
          if (kernel == "BFS") t = s->time_bfs(threads, source);
          if (kernel == "BC") t = s->time_bc(threads, source);
          if (kernel == "CC") t = s->time_cc(threads);
          row.push_back(TablePrinter::fmt(t, 3));
        }
      }
      // Read the tier counters AFTER the kernels so the column reflects
      // this row's analysis traffic.
      const tier::CacheStats cs = s->cache_stats();
      row.push_back(cs.hits + cs.misses > 0
                        ? TablePrinter::fmt(100.0 * cs.hit_rate(), 1)
                        : "-");
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }

  // --- analysis concurrent with ingest (--live-ingest) ---------------------
  if (cfg.live_ingest &&
      (cfg.only_system.empty() || cfg.only_system == "dgap")) {
    std::map<std::string, EdgeStream> live_streams;  // loaded on demand
    const bool live_ok = print_live_ingest_section(
        cfg,
        [&](const std::string& name) -> const EdgeStream& {
          auto it = live_streams.find(name);
          if (it == live_streams.end())
            it = live_streams.emplace(name, load_dataset(name, cfg.scale))
                     .first;
          return it->second;
        },
        std::cout);
    if (!live_ok) return 1;  // incremental kernels diverged from full
  }
  return 0;
}

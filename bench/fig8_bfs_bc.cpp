// Figure 8: BFS and Betweenness Centrality runtime, normalized to CSR on
// PM, single analysis thread.
//
// Expected shape (paper §4.3): unlike the whole-graph kernels, GraphOne-FD
// and XPGraph *win* BFS (adjacency lists in DRAM fit its random vertex
// access), DGAP stays within ~1.1-1.4x of CSR and far ahead of LLAMA; for
// the heavier BC, DGAP catches back up to the DRAM-based systems.
// --csr-cache adds the SnapshotCsrCache section: BFS and BC run over ONE
// snapshot twice (raw, and through the cached CSR materialization of the
// same cut), results verified identical, second-kernel speedup reported.
// --dram-cache=MB adds the DRAM hot-tier section: BFS and BC cache-off vs
// cache-on under a read-charged media model, hit rate and gap-closed
// reported, cache-on results verified identical.
#include <iostream>
#include <map>

#include "src/algorithms/bc.hpp"
#include "src/algorithms/bfs.hpp"
#include "src/bench_common/harness.hpp"
#include "src/common/table.hpp"
#include "src/graph/datasets.hpp"

using namespace dgap;
using namespace dgap::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  BenchConfig cfg;
  try {
    cfg = parse_common(
        cli, /*default_scale=*/0.1,
        {"orkut", "livejournal", "citpatents", "twitter", "friendster",
         "protein"});
  } catch (const std::exception& ex) {
    std::cerr << cli.program() << ": " << ex.what() << "\n";
    return 2;
  }
  cfg.latency = cli.get_bool("latency", false);
  configure_latency(cfg.latency);
  print_banner(
      "Figure 8: BFS and BC time normalized to CSR on PM (1 thread)", cfg);

  for (const char* kernel : {"BFS", "BC"}) {
    std::cout << "\n--- " << kernel << " ---\n";
    TablePrinter table({"Graph", "CSR(s)", "DGAP", "BAL", "LLAMA",
                        "GraphOne-FD", "XPGraph"});
    for (const auto& name : cfg.datasets) {
      EdgeStream stream = load_dataset(name, cfg.scale);
      auto csr_pool = fresh_pool(cfg.pool_mb);
      auto csr = make_csr(*csr_pool, stream);
      const NodeId source = csr->pick_source();
      const double base = std::string(kernel) == "BFS"
                              ? csr->time_bfs(1, source)
                              : csr->time_bc(1, source);
      std::vector<std::string> row = {name, TablePrinter::fmt(base, 3)};
      for (const auto& sys : kDynamicSystems) {
        if (!cfg.only_system.empty() && sys != cfg.only_system) {
          row.push_back("-");
          continue;
        }
        auto pool = fresh_pool(cfg.pool_mb);
        auto store = make_store(sys, *pool, stream.num_vertices(),
                                stream.num_edges(), 1);
        for (const Edge& e : stream.edges()) store->insert(e.src, e.dst);
        store->finalize();
        const double t = std::string(kernel) == "BFS"
                             ? store->time_bfs(1, source)
                             : store->time_bc(1, source);
        row.push_back(TablePrinter::fmt(t / base));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }

  // --- SnapshotCsrCache (--csr-cache): kernels over one cut ----------------
  if (cfg.csr_cache &&
      (cfg.only_system.empty() || cfg.only_system == "dgap")) {
    std::map<std::string, EdgeStream> csr_streams;  // loaded on demand
    const bool ok = print_csr_cache_section(
        cfg, "BFS", "BC",
        [&](const std::string& name) -> const EdgeStream& {
          auto it = csr_streams.find(name);
          if (it == csr_streams.end())
            it = csr_streams.emplace(name, load_dataset(name, cfg.scale))
                     .first;
          return it->second;
        },
        [](const auto& g, NodeId source) {
          return algorithms::bfs(g, source);
        },
        [](const auto& g, NodeId source) {
          return algorithms::betweenness_centrality(g, source);
        },
        std::cout);
    if (!ok) {
      std::cerr << "csr-cache: kernel results diverge from the uncached "
                   "path\n";
      return 1;
    }
  }

  // --- DRAM hot tier (--dram-cache=MB): read-charged BFS+BC -----------------
  if (cfg.tuning.dram_cache_mb != 0 &&
      (cfg.only_system.empty() || cfg.only_system == "dgap")) {
    std::map<std::string, EdgeStream> tier_streams;  // loaded on demand
    const bool ok = print_dram_cache_section(
        cfg, "BFS", "BC",
        [&](const std::string& name) -> const EdgeStream& {
          auto it = tier_streams.find(name);
          if (it == tier_streams.end())
            it = tier_streams.emplace(name, load_dataset(name, cfg.scale))
                     .first;
          return it->second;
        },
        [](const auto& g, NodeId source) {
          return algorithms::bfs(g, source);
        },
        [](const auto& g, NodeId source) {
          return algorithms::betweenness_centrality(g, source);
        },
        std::cout);
    if (!ok) {
      std::cerr << "dram-cache: kernel results diverge from the uncached "
                   "path\n";
      return 1;
    }
  }
  return 0;
}

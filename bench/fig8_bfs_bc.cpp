// Figure 8: BFS and Betweenness Centrality runtime, normalized to CSR on
// PM, single analysis thread.
//
// Expected shape (paper §4.3): unlike the whole-graph kernels, GraphOne-FD
// and XPGraph *win* BFS (adjacency lists in DRAM fit its random vertex
// access), DGAP stays within ~1.1-1.4x of CSR and far ahead of LLAMA; for
// the heavier BC, DGAP catches back up to the DRAM-based systems.
#include <iostream>

#include "src/bench_common/harness.hpp"
#include "src/common/table.hpp"
#include "src/graph/datasets.hpp"

using namespace dgap;
using namespace dgap::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  BenchConfig cfg = parse_common(
      cli, /*default_scale=*/0.1,
      {"orkut", "livejournal", "citpatents", "twitter", "friendster",
       "protein"});
  cfg.latency = cli.get_bool("latency", false);
  configure_latency(cfg.latency);
  print_banner(
      "Figure 8: BFS and BC time normalized to CSR on PM (1 thread)", cfg);

  for (const char* kernel : {"BFS", "BC"}) {
    std::cout << "\n--- " << kernel << " ---\n";
    TablePrinter table({"Graph", "CSR(s)", "DGAP", "BAL", "LLAMA",
                        "GraphOne-FD", "XPGraph"});
    for (const auto& name : cfg.datasets) {
      EdgeStream stream = load_dataset(name, cfg.scale);
      auto csr_pool = fresh_pool(cfg.pool_mb);
      auto csr = make_csr(*csr_pool, stream);
      const NodeId source = csr->pick_source();
      const double base = std::string(kernel) == "BFS"
                              ? csr->time_bfs(1, source)
                              : csr->time_bc(1, source);
      std::vector<std::string> row = {name, TablePrinter::fmt(base, 3)};
      for (const auto& sys : kDynamicSystems) {
        if (!cfg.only_system.empty() && sys != cfg.only_system) {
          row.push_back("-");
          continue;
        }
        auto pool = fresh_pool(cfg.pool_mb);
        auto store = make_store(sys, *pool, stream.num_vertices(),
                                stream.num_edges(), 1);
        for (const Edge& e : stream.edges()) store->insert(e.src, e.dst);
        store->finalize();
        const double t = std::string(kernel) == "BFS"
                             ? store->time_bfs(1, source)
                             : store->time_bc(1, source);
        row.push_back(TablePrinter::fmt(t / base));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }
  return 0;
}

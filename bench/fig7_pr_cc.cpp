// Figure 7: PageRank and Connected Components runtime, normalized to CSR
// on PM, single analysis thread.
//
// Expected shape (paper §4.3): DGAP within ~1.3-1.4x of CSR — clearly ahead
// of BAL / LLAMA / XPGraph on these whole-graph kernels, and usually ahead
// of GraphOne-FD despite GraphOne analyzing from DRAM, because the mutable
// CSR keeps cache locality that an adjacency list lacks.
// --shards=a,b adds a sharded-DGAP section: the same kernels run over the
// composed per-shard snapshots (ShardedSnapshot), demonstrating that
// analysis is not regressed by partitioning ingestion.
// --csr-cache adds the SnapshotCsrCache section: PR and CC run over ONE
// snapshot twice — raw, and through the cached CSR materialization of the
// same cut — with results verified identical and the second-kernel speedup
// reported.
// --dram-cache=MB adds the DRAM hot-tier section: PR and CC run cache-off
// vs cache-on under a read-charged media model (--pm-read-ns per line),
// with the uncharged static CSR as the DRAM-speed floor; the hit rate and
// the fraction of the PM-vs-CSR gap closed are reported, and cache-on
// results are verified identical to cache-off.
// --live-ingest adds the HTAP section: async producers flood the second
// half of the stream while the analysis thread snapshots + runs PageRank
// in a loop; both sides' throughput is reported (pre-refactor, ingest
// minting new vertex ids stalled behind a held snapshot).
// --cold-tier turns --pool-mb into DGAP's PHYSICAL pmem budget (the pool's
// virtual span is oversized; the SSD tier demotes to stay within budget)
// and adds the cold-tier section: PR and CC over a store whose enforced
// budget is half its resident footprint, verified bit-identical to the
// unconstrained run, with the slowdown factor reported.
#include <iostream>
#include <map>

#include "src/algorithms/cc.hpp"
#include "src/algorithms/pagerank.hpp"
#include "src/bench_common/harness.hpp"
#include "src/common/table.hpp"
#include "src/graph/datasets.hpp"
#include "src/pmem/alloc.hpp"

using namespace dgap;
using namespace dgap::bench;

namespace {
int run(const Cli& cli, BenchConfig& cfg);
}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  BenchConfig cfg;
  try {
    cfg = parse_common(
        cli, /*default_scale=*/0.1,
        {"orkut", "livejournal", "citpatents", "twitter", "friendster",
         "protein"});
  } catch (const std::exception& ex) {
    std::cerr << cli.program() << ": " << ex.what() << "\n";
    return 2;
  }
  try {
    return run(cli, cfg);
  } catch (const pmem::PoolCapacityError& ex) {
    // The graph outgrew a fixed-size pool: fail with the actionable
    // message instead of a bare bad_alloc (check.sh asserts on this).
    std::cerr << cli.program() << ": " << ex.what() << "\n";
    return 3;
  }
}

namespace {
int run(const Cli& cli, BenchConfig& cfg) {
  // Analysis benches: the latency model only affects loading (our reads are
  // not charged); default it off so the binaries finish quickly.
  cfg.latency = cli.get_bool("latency", false);
  configure_latency(cfg.latency);
  print_banner(
      "Figure 7: PR and CC time normalized to CSR on PM (1 thread)", cfg);
  const ObsSession obs(cfg);

  // Load each dataset once; the kernel loops and the sharded section reuse
  // the streams, and the CSR baselines are cached for the sharded rows.
  std::map<std::string, EdgeStream> streams;
  for (const auto& name : cfg.datasets)
    streams.emplace(name, load_dataset(name, cfg.scale));
  std::map<std::string, double> base_pr, base_cc;

  for (const char* kernel : {"PR", "CC"}) {
    std::cout << "\n--- " << kernel << " ---\n";
    TablePrinter table({"Graph", "CSR(s)", "DGAP", "BAL", "LLAMA",
                        "GraphOne-FD", "XPGraph"});
    for (const auto& name : cfg.datasets) {
      const EdgeStream& stream = streams.at(name);
      // With --cold-tier, the baselines get the same oversized span as
      // DGAP (they have no tier; only DGAP is capacity-constrained).
      auto csr_pool = fresh_pool_for(cfg.pool_mb, cfg.tuning);
      auto csr = make_csr(*csr_pool, stream);
      const bool is_pr = std::string(kernel) == "PR";
      const double base = is_pr ? csr->time_pagerank(1) : csr->time_cc(1);
      (is_pr ? base_pr : base_cc)[name] = base;
      std::vector<std::string> row = {name, TablePrinter::fmt(base, 3)};
      for (const auto& sys : kDynamicSystems) {
        if (!cfg.only_system.empty() && sys != cfg.only_system) {
          row.push_back("-");
          continue;
        }
        auto pool = fresh_pool_for(cfg.pool_mb, cfg.tuning);
        auto store = make_store(sys, *pool, stream.num_vertices(),
                                stream.num_edges(), 1, cfg.tuning);
        for (const Edge& e : stream.edges()) store->insert(e.src, e.dst);
        store->finalize();
        const double t = std::string(kernel) == "PR"
                             ? store->time_pagerank(1)
                             : store->time_cc(1);
        row.push_back(TablePrinter::fmt(t / base));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }

  // --- sharded snapshots (--shards=a,b): analysis must not regress ----------
  if (!cfg.shards.empty() &&
      (cfg.only_system.empty() || cfg.only_system == "dgap")) {
    std::cout << "\n--- DGAP sharded snapshots (xCSR, 1 thread) ---\n";
    TablePrinter table({"Graph", "shards", "PR xCSR", "CC xCSR"});
    for (const auto& name : cfg.datasets) {
      const EdgeStream& stream = streams.at(name);
      for (const int s : sharded_sweep_counts(cfg)) {
        auto store = make_sharded_store(s, stream.num_vertices(),
                                        stream.num_edges(), 1, cfg.pool_mb);
        constexpr std::size_t kChunk = 8192;
        const auto all = stream.all();
        for (std::size_t i = 0; i < all.size(); i += kChunk)
          store->insert_batch(
              all.subspan(i, std::min(kChunk, all.size() - i)));
        table.add_row(
            {name, std::to_string(s),
             TablePrinter::fmt(store->time_pagerank(1) / base_pr.at(name)),
             TablePrinter::fmt(store->time_cc(1) / base_cc.at(name))});
      }
    }
    table.print(std::cout);
  }

  // --- SnapshotCsrCache (--csr-cache): kernels over one cut ----------------
  if (cfg.csr_cache &&
      (cfg.only_system.empty() || cfg.only_system == "dgap")) {
    const bool ok = print_csr_cache_section(
        cfg, "PR", "CC",
        [&](const std::string& name) -> const EdgeStream& {
          return streams.at(name);
        },
        [](const auto& g, NodeId) { return algorithms::pagerank(g); },
        [](const auto& g, NodeId) {
          return algorithms::connected_components(g);
        },
        std::cout);
    if (!ok) {
      std::cerr << "csr-cache: kernel results diverge from the uncached "
                   "path\n";
      return 1;
    }
  }

  // --- DRAM hot tier (--dram-cache=MB): read-charged PR+CC ------------------
  if (cfg.tuning.dram_cache_mb != 0 &&
      (cfg.only_system.empty() || cfg.only_system == "dgap")) {
    const bool ok = print_dram_cache_section(
        cfg, "PR", "CC",
        [&](const std::string& name) -> const EdgeStream& {
          return streams.at(name);
        },
        [](const auto& g, NodeId) { return algorithms::pagerank(g); },
        [](const auto& g, NodeId) {
          return algorithms::connected_components(g);
        },
        std::cout);
    if (!ok) {
      std::cerr << "dram-cache: kernel results diverge from the uncached "
                   "path\n";
      return 1;
    }
  }

  // --- SSD cold tier (--cold-tier): capacity-constrained PR+CC -------------
  if (cfg.tuning.cold_tier &&
      (cfg.only_system.empty() || cfg.only_system == "dgap")) {
    const bool ok = print_cold_tier_section(
        cfg, "PR", "CC",
        [&](const std::string& name) -> const EdgeStream& {
          return streams.at(name);
        },
        [](const auto& g, NodeId) { return algorithms::pagerank(g); },
        [](const auto& g, NodeId) {
          return algorithms::connected_components(g);
        },
        std::cout);
    if (!ok) {
      std::cerr << "cold-tier: kernel results diverge from the "
                   "unconstrained path\n";
      return 1;
    }
  }

  // --- analysis concurrent with ingest (--live-ingest) ---------------------
  if (cfg.live_ingest &&
      (cfg.only_system.empty() || cfg.only_system == "dgap")) {
    const bool live_ok = print_live_ingest_section(
        cfg,
        [&](const std::string& name) -> const EdgeStream& {
          return streams.at(name);
        },
        std::cout);
    if (!live_ok) return 1;  // incremental kernels diverged from full
  }
  return 0;
}
}  // namespace

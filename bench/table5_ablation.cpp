// Table 5: DGAP component ablation — full insert time (seconds) for the
// three small graphs with design components removed incrementally:
//
//   DGAP           all three designs on
//   No EL          per-section edge log off (nearby shifts return)
//   No EL&UL       + per-thread undo log off (PMDK-style transactions)
//   No EL&UL&DP    + DRAM data placement off (metadata persisted in place)
//
// Expected shape: the edge log contributes the most (~4.5x in the paper);
// the undo log another ~13%; metadata placement roughly doubles the rest.
#include <iostream>

#include "src/bench_common/harness.hpp"
#include "src/common/table.hpp"
#include "src/core/dgap_store.hpp"
#include "src/graph/datasets.hpp"

using namespace dgap;
using namespace dgap::bench;

namespace {

double run_variant(const EdgeStream& stream, std::uint64_t pool_mb,
                   bool use_elog, bool use_ulog, bool dram_meta) {
  auto pool = fresh_pool(pool_mb);
  core::DgapOptions o;
  o.init_vertices = stream.num_vertices();
  o.init_edges = stream.num_edges();
  o.use_elog = use_elog;
  o.use_ulog = use_ulog;
  o.metadata_in_dram = dram_meta;
  auto store = core::DgapStore::create(*pool, o);
  Timer t;
  for (const Edge& e : stream.edges()) store->insert_edge(e.src, e.dst);
  return t.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchConfig cfg = parse_common(
      cli, /*default_scale=*/0.1, {"orkut", "livejournal", "citpatents"});
  configure_latency(cfg.latency);
  print_banner("Table 5: insertion time (s) of DGAP ablation variants",
               cfg);

  TablePrinter table(
      {"Graph", "DGAP", "No EL", "No EL&UL", "No EL&UL&DP"});
  for (const auto& name : cfg.datasets) {
    EdgeStream stream = load_dataset(name, cfg.scale);
    table.add_row(
        {name,
         TablePrinter::fmt(run_variant(stream, cfg.pool_mb, true, true,
                                       true)),
         TablePrinter::fmt(run_variant(stream, cfg.pool_mb, false, true,
                                       true)),
         TablePrinter::fmt(run_variant(stream, cfg.pool_mb, false, false,
                                       true)),
         TablePrinter::fmt(run_variant(stream, cfg.pool_mb, false, false,
                                       false))});
  }
  table.print(std::cout);
  return 0;
}

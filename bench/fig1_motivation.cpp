// Figure 1: the three motivation microbenchmarks (paper §2.4).
//
// (a) Write amplification of a naive PMA-based mutable CSR (DGAP with the
//     per-section edge log disabled) while inserting Orkut: the ratio of
//     bytes actually written to PM media over the 4-byte edge payload,
//     sampled per decile of the insertion stream. The paper observes up to
//     ~7x. A DGAP (edge log on) column shows the fix.
// (b) The same insert workload timed on DRAM (latency model off), PM
//     (latency model on), and PM with PMDK-style transactions protecting
//     structural operations. The paper's point: transactions are brutally
//     expensive on PM.
// (c) Persistent-write latency of sequential, random, and in-place flush
//     patterns over the same byte volume — in-place is ~7x sequential on
//     Optane.
#include <iostream>

#include "src/bench_common/harness.hpp"
#include "src/common/rng.hpp"
#include "src/common/table.hpp"
#include "src/core/dgap_store.hpp"
#include "src/graph/datasets.hpp"
#include "src/pmem/latency_model.hpp"
#include "src/pmem/stats.hpp"

using namespace dgap;
using namespace dgap::bench;

namespace {

std::unique_ptr<core::DgapStore> make_variant(pmem::PmemPool& pool,
                                              const EdgeStream& stream,
                                              bool use_elog, bool use_ulog,
                                              bool protect = true) {
  core::DgapOptions o;
  o.init_vertices = stream.num_vertices();
  o.init_edges = stream.num_edges();
  o.use_elog = use_elog;
  o.use_ulog = use_ulog;
  o.protect_structural_ops = protect;
  return core::DgapStore::create(pool, o);
}

void fig1a(const BenchConfig& cfg) {
  std::cout << "\n-- Fig 1(a): write amplification during Orkut inserts --\n";
  EdgeStream stream = load_dataset("orkut", cfg.scale);
  TablePrinter table({"Progress", "NaiveCSR(xWrite)", "DGAP(xWrite)"});

  auto run = [&](bool use_elog) {
    auto pool = fresh_pool(cfg.pool_mb);
    auto store = make_variant(*pool, stream, use_elog, true);
    std::vector<double> amp;
    const std::size_t decile = stream.num_edges() / 10;
    auto last = pmem::stats().snapshot();
    std::size_t next_mark = decile;
    std::size_t done = 0;
    for (const Edge& e : stream.edges()) {
      store->insert_edge(e.src, e.dst);
      if (++done >= next_mark) {
        const auto now = pmem::stats().snapshot();
        const auto delta = now - last;
        // The paper's metric: bytes the store asked to write vs the 4-byte
        // edge payload (nearby shifts multiply the numerator).
        amp.push_back(static_cast<double>(delta.bytes_requested) /
                      (static_cast<double>(decile) * kEdgePayloadBytes));
        last = now;
        next_mark += decile;
      }
    }
    return amp;
  };

  const auto naive = run(false);
  const auto dgap = run(true);
  for (std::size_t i = 0; i < naive.size() && i < dgap.size(); ++i) {
    table.add_row({std::to_string((i + 1) * 10) + "%",
                   TablePrinter::fmt(naive[i], 1),
                   TablePrinter::fmt(dgap[i], 1)});
  }
  table.print(std::cout);
}

void fig1b(const BenchConfig& cfg) {
  std::cout << "\n-- Fig 1(b): insert time, DRAM vs PM vs PM+TX --\n";
  EdgeStream stream = load_dataset("citpatents", cfg.scale);
  TablePrinter table({"Medium", "InsertTime(s)"});

  // DRAM / PM: the naive PMA port writes with no crash protection at all;
  // PM-TX adds PMDK-style transactions around structural operations — the
  // cost gap the paper's motivation highlights.
  auto run = [&](bool latency, bool use_ulog, bool protect) {
    configure_latency(latency);
    auto pool = fresh_pool(cfg.pool_mb);
    auto store =
        make_variant(*pool, stream, /*use_elog=*/false, use_ulog, protect);
    Timer t;
    for (const Edge& e : stream.edges()) store->insert_edge(e.src, e.dst);
    const double s = t.seconds();
    configure_latency(cfg.latency);
    return s;
  };

  table.add_row({"DRAM", TablePrinter::fmt(run(false, true, false), 3)});
  table.add_row({"PM", TablePrinter::fmt(run(true, true, false), 3)});
  table.add_row({"PM-TX", TablePrinter::fmt(run(true, false, true), 3)});
  table.print(std::cout);
}

void fig1c(const BenchConfig& cfg) {
  std::cout << "\n-- Fig 1(c): persistent write latency by access pattern --\n";
  configure_latency(true);  // this subfigure is about the latency model
  auto pool = fresh_pool(64);
  const std::uint64_t lines = 32768;  // 2 MB of cache lines
  char* base = pool->at<char>(pmem::PmemPool::kHeaderSize);

  TablePrinter table({"Pattern", "ns/line"});
  auto run = [&](const char* name, auto&& next_offset) {
    Timer t;
    for (std::uint64_t i = 0; i < lines; ++i) {
      char* p = base + next_offset(i);
      *reinterpret_cast<std::uint64_t*>(p) = i;
      pool->persist(p, sizeof(std::uint64_t));
    }
    table.add_row({name, TablePrinter::fmt(
                             t.seconds() * 1e9 / static_cast<double>(lines),
                             0)});
  };

  run("Seq", [](std::uint64_t i) { return i * 64; });
  Rng rng(99);
  run("Rnd", [&](std::uint64_t) { return rng.next_below(lines) * 64; });
  run("In-place", [](std::uint64_t) { return std::uint64_t{0}; });
  table.print(std::cout);
  configure_latency(cfg.latency);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchConfig cfg = parse_common(cli, /*default_scale=*/0.1,
                                       {"orkut", "citpatents"});
  configure_latency(cfg.latency);
  print_banner("Figure 1: PMA-on-PM motivation microbenchmarks", cfg);
  fig1a(cfg);
  fig1b(cfg);
  fig1c(cfg);
  return 0;
}

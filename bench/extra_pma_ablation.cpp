// Extra ablations beyond the paper's tables (DESIGN.md §4 "extras"):
//   1. VCSR degree-weighted gap layout vs classic even PMA layout — the
//      design choice DGAP inherits from VCSR [24] over PCSR [66];
//   2. PMA segment-size sweep (section granularity trades lock/merge
//      overhead against rebalance width);
//   3. per-thread undo-log size sweep (chunk granularity of crash-safe
//      moves).
#include <iostream>

#include "src/bench_common/harness.hpp"
#include "src/common/table.hpp"
#include "src/core/dgap_store.hpp"
#include "src/graph/datasets.hpp"

using namespace dgap;
using namespace dgap::bench;

namespace {

struct RunOut {
  double seconds;
  std::uint64_t rebalances;
};

RunOut run(const EdgeStream& stream, std::uint64_t pool_mb,
           const core::DgapOptions& base) {
  auto pool = fresh_pool(pool_mb);
  auto store = core::DgapStore::create(*pool, base);
  Timer t;
  for (const Edge& e : stream.edges()) store->insert_edge(e.src, e.dst);
  return {t.seconds(), store->stats().rebalances};
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchConfig cfg =
      parse_common(cli, /*default_scale=*/0.1, {"orkut"});
  configure_latency(cfg.latency);
  print_banner("Extra ablations: layout strategy, segment size, ULOG size",
               cfg);
  EdgeStream stream = load_dataset(cfg.datasets[0], cfg.scale);

  core::DgapOptions base;
  base.init_vertices = stream.num_vertices();
  base.init_edges = stream.num_edges();

  {
    std::cout << "\n--- gap layout strategy ---\n";
    TablePrinter t({"Layout", "InsertTime(s)", "Rebalances"});
    for (const bool weighted : {true, false}) {
      core::DgapOptions o = base;
      o.vcsr_weighted_gaps = weighted;
      const RunOut r = run(stream, cfg.pool_mb, o);
      t.add_row({weighted ? "VCSR-weighted" : "even(PCSR)",
                 TablePrinter::fmt(r.seconds, 3),
                 std::to_string(r.rebalances)});
    }
    t.print(std::cout);
  }
  {
    std::cout << "\n--- segment size (slots per section) ---\n";
    TablePrinter t({"SegmentSlots", "InsertTime(s)", "Rebalances"});
    for (const std::uint64_t slots : {128u, 256u, 512u, 1024u, 2048u}) {
      core::DgapOptions o = base;
      o.segment_slots = slots;
      const RunOut r = run(stream, cfg.pool_mb, o);
      t.add_row({std::to_string(slots), TablePrinter::fmt(r.seconds, 3),
                 std::to_string(r.rebalances)});
    }
    t.print(std::cout);
  }
  {
    std::cout << "\n--- undo log size (bytes) ---\n";
    TablePrinter t({"ULOG_SZ", "InsertTime(s)"});
    for (const std::uint32_t sz : {512u, 1024u, 2048u, 4096u, 8192u}) {
      core::DgapOptions o = base;
      o.ulog_bytes = sz;
      const RunOut r = run(stream, cfg.pool_mb, o);
      t.add_row({std::to_string(sz), TablePrinter::fmt(r.seconds, 3)});
    }
    t.print(std::cout);
  }
  return 0;
}

// Figure 9: impact of the per-section edge log size (ELOG_SZ), swept from
// 64 B to 16 KB on Orkut and LiveJournal.
//
// Three series per graph, as in the paper: total edge-log space (MB, grows
// linearly with ELOG_SZ), average log utilization observed at merge time
// (drops as logs outgrow the shift pressure), and total insert time (falls
// then flattens past the paper's chosen 2048 B).
#include <iostream>

#include "src/bench_common/harness.hpp"
#include "src/common/table.hpp"
#include "src/core/dgap_store.hpp"
#include "src/graph/datasets.hpp"

using namespace dgap;
using namespace dgap::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchConfig cfg = parse_common(cli, /*default_scale=*/0.1,
                                       {"orkut", "livejournal"});
  configure_latency(cfg.latency);
  print_banner("Figure 9: per-section edge log size sweep", cfg);

  for (const auto& name : cfg.datasets) {
    EdgeStream stream = load_dataset(name, cfg.scale);
    std::cout << "\n--- " << name << " ---\n";
    TablePrinter table(
        {"ELOG_SZ(B)", "TotalLog(MB)", "Util@Merge(%)", "InsertTime(s)"});
    for (std::uint32_t sz = 64; sz <= 16384; sz *= 2) {
      auto pool = fresh_pool(cfg.pool_mb);
      core::DgapOptions o;
      o.init_vertices = stream.num_vertices();
      o.init_edges = stream.num_edges();
      o.elog_bytes = sz;
      auto store = core::DgapStore::create(*pool, o);
      Timer t;
      for (const Edge& e : stream.edges())
        store->insert_edge(e.src, e.dst);
      const double secs = t.seconds();
      table.add_row(
          {std::to_string(sz),
           TablePrinter::fmt(static_cast<double>(
                                 store->elog_capacity_bytes()) /
                             (1024.0 * 1024.0)),
           TablePrinter::fmt(store->elog_fill_at_merge() * 100.0, 1),
           TablePrinter::fmt(secs, 3)});
    }
    table.print(std::cout);
  }
  return 0;
}

// google-benchmark microbenchmarks for the PM substrate and PMA core: the
// primitive costs underlying every table in the paper reproduction
// (per-line flush, fence, allocator, transaction round-trip, PMA insert).
#include <benchmark/benchmark.h>

#include "src/common/rng.hpp"
#include "src/pma/pma_set.hpp"
#include "src/pmem/alloc.hpp"
#include "src/pmem/latency_model.hpp"
#include "src/pmem/pool.hpp"
#include "src/pmem/tx.hpp"

namespace dgap {
namespace {

using pmem::PmemPool;

void BM_PersistLine(benchmark::State& state) {
  pmem::LatencyConfig lc;
  lc.enabled = state.range(0) != 0;
  pmem::latency_model().configure(lc);
  auto pool = PmemPool::create({.path = "", .size = 16 << 20});
  char* base = pool->at<char>(PmemPool::kHeaderSize);
  std::uint64_t i = 0;
  for (auto _ : state) {
    char* p = base + (i++ % 1024) * 64;
    *reinterpret_cast<std::uint64_t*>(p) = i;
    pool->persist(p, 8);
  }
  pmem::latency_model().configure(pmem::LatencyConfig{});
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PersistLine)->Arg(0)->Arg(1);

void BM_PersistSequential4K(benchmark::State& state) {
  auto pool = PmemPool::create({.path = "", .size = 64 << 20});
  char* base = pool->at<char>(PmemPool::kHeaderSize);
  std::uint64_t off = 0;
  for (auto _ : state) {
    pool->persist(base + off, 4096);
    off = (off + 4096) % (32u << 20);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_PersistSequential4K);

void BM_AllocatorAllocFree(benchmark::State& state) {
  auto pool = PmemPool::create({.path = "", .size = 64 << 20});
  auto& alloc = pool->allocator();
  for (auto _ : state) {
    const auto off = alloc.alloc(static_cast<std::uint64_t>(state.range(0)));
    alloc.free(off, static_cast<std::uint64_t>(state.range(0)));
  }
}
BENCHMARK(BM_AllocatorAllocFree)->Arg(64)->Arg(4096)->Arg(65536);

void BM_TxRoundTrip(benchmark::State& state) {
  auto pool = PmemPool::create({.path = "", .size = 64 << 20});
  const auto anchor = pmem::TxJournal::create(*pool);
  pmem::TxJournal journal(*pool, anchor);
  const auto data = pool->allocator().alloc(4096);
  auto* p = pool->at<std::uint64_t>(data);
  for (auto _ : state) {
    pmem::PmemTx tx(*pool, journal);
    tx.add_range(p, static_cast<std::uint64_t>(state.range(0)));
    p[0] += 1;
    pool->persist(p, 8);
    tx.commit();
  }
}
BENCHMARK(BM_TxRoundTrip)->Arg(64)->Arg(1024);

void BM_PmaSetInsert(benchmark::State& state) {
  pma::PmaSet::Config cfg;
  cfg.segment_slots = static_cast<std::uint64_t>(state.range(0));
  pma::PmaSet set(cfg);
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.insert(rng.next_u64() >> 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PmaSetInsert)->Arg(32)->Arg(256);

}  // namespace
}  // namespace dgap

BENCHMARK_MAIN();

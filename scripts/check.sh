#!/usr/bin/env bash
# Tier-1 verify sequence (see ROADMAP.md) plus an examples sanity run.
# Usage: scripts/check.sh [extra ctest args]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)" "$@"

# Smoke-run the quickstart example end to end (pool create -> batch insert
# -> snapshot analysis -> shutdown -> reopen).
./build/quickstart --pool /tmp/dgap_check_quickstart.pool

echo "check.sh: all good"

#!/usr/bin/env bash
# Tier-1 verify sequence (see ROADMAP.md) plus an examples sanity run.
# Usage: scripts/check.sh [extra ctest args]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)" "$@"

# Smoke-run the quickstart example end to end (pool create -> batch insert
# -> snapshot analysis -> shutdown -> reopen).
./build/quickstart --pool /tmp/dgap_check_quickstart.pool

# Smoke-run streaming analytics: async ingestion (producers -> staging
# queues -> absorbers) racing the snapshot-analysis thread.
./build/streaming_analytics --events 20000 --rounds 2 --producers 2 \
  --async-writers 2

# Smoke-run a sharded fig6 config: S=2 shards, batched + per-edge paths,
# sharded-vs-unsharded speedup table included.
./build/fig6_insert_throughput --shards=2 --datasets=orkut --scale=0.02 \
  --batch=256 --system=dgap --pool-mb=256

# Smoke-run the task scheduler end to end: a 2-worker pool sized via
# --threads, absorbers running as scheduler tasks, and the analysis
# kernels on the sched execution path (--sched) instead of OpenMP.
./build/fig6_insert_throughput --threads=2 --sched --async-writers=2 \
  --datasets=orkut --scale=0.02 --batch=256 --system=dgap --pool-mb=256
./build/streaming_analytics --events 20000 --rounds 2 --producers 2 \
  --async-writers 2 --threads 2 --sched

# Smoke-run the adaptive ingest tuning path: ingest-heavy section geometry
# plus arrival-rate absorb autotuning through the async sweep.
./build/fig6_insert_throughput --ingest-profile=ingest-heavy --autotune \
  --async-writers=1 --datasets=orkut --scale=0.02 --batch=256 \
  --system=dgap --pool-mb=256
./build/streaming_analytics --events 20000 --rounds 2 --producers 2 \
  --async-writers 2 --autotune --ingest-profile ingest-heavy

# Smoke-run the snapshot-subsystem bench modes: analysis concurrent with
# async ingest (--live-ingest) and the CSR materialization cache
# (--csr-cache, which also verifies cached kernels match uncached exactly).
./build/fig7_pr_cc --live-ingest --live-producers=2 --datasets=orkut \
  --scale=0.02 --system=dgap --pool-mb=256
./build/fig7_pr_cc --csr-cache --datasets=orkut --scale=0.02 \
  --system=dgap --pool-mb=256
./build/fig8_bfs_bc --csr-cache --datasets=orkut --scale=0.02 \
  --system=dgap --pool-mb=256

# Smoke-run incremental analytics: delta-seeded PR/CC rounds racing live
# ingest (the section verifies every round — CC labels exactly equal to the
# full kernel, PR within the shared tolerance bound — and the binary exits
# non-zero on divergence), plus the streaming example's --incremental mode
# with its final against-full check after the drain.
./build/fig7_pr_cc --live-ingest --incremental --live-producers=2 \
  --live-pace-ns=2000 --datasets=orkut --scale=0.02 --system=dgap \
  --pool-mb=256
./build/streaming_analytics --events 20000 --rounds 3 --producers 2 \
  --async-writers 2 --incremental

# Smoke-run the DRAM hot tier: read-charged kernels, cache-off vs cache-on
# (the section also verifies cache-on results match cache-off exactly).
./build/fig7_pr_cc --dram-cache=64 --eviction=clock --datasets=orkut \
  --scale=0.02 --system=dgap --pool-mb=256

# Smoke-run the SSD cold tier under real capacity pressure: --pool-mb=2 is
# far below the graph's footprint, so the run only completes if demotion
# keeps residency within budget while kernels stay bit-identical (the
# section enforces that and the binary exits non-zero on divergence).
./build/fig7_pr_cc --cold-tier --datasets=orkut --scale=0.05 \
  --system=dgap --pool-mb=2
# Same run without the tier must fail with the actionable capacity error,
# not a bare bad_alloc or a crash.
if OUT=$(./build/fig7_pr_cc --datasets=orkut --scale=0.05 --system=dgap \
    --pool-mb=2 2>&1); then
  echo "check.sh: undersized tier-off run unexpectedly succeeded" >&2
  exit 1
elif ! grep -q "pool capacity exceeded" <<<"$OUT"; then
  echo "check.sh: missing capacity-error message, got: $OUT" >&2
  exit 1
fi

# Smoke-run the observability exporters: fig6 and streaming_analytics with
# the metrics sampler and structural trace ring on. Every artifact must be
# non-empty, parseable JSON (JSON-lines for metrics, chrome://tracing for
# the trace, Prometheus text for the .prom dump).
OBS_DIR=$(mktemp -d /tmp/dgap_check_obs.XXXXXX)
./build/fig6_insert_throughput --datasets=orkut --scale=0.02 --batch=256 \
  --system=dgap --pool-mb=256 \
  --metrics-out="$OBS_DIR/fig6_metrics.jsonl" --metrics-interval-ms=100 \
  --trace-out="$OBS_DIR/fig6_trace.json"
./build/streaming_analytics --events 20000 --rounds 2 --producers 2 \
  --async-writers 2 --metrics-out "$OBS_DIR/sa_metrics.jsonl" \
  --metrics-interval-ms 100 --trace-out "$OBS_DIR/sa_trace.json"
for f in fig6_metrics.jsonl sa_metrics.jsonl; do
  test -s "$OBS_DIR/$f" || { echo "check.sh: empty metrics: $f" >&2; exit 1; }
  python3 - "$OBS_DIR/$f" <<'EOF'
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert lines, "no samples"
for l in lines:
    s = json.loads(l)
    assert "t_ms" in s and "counters" in s and "hist" in s, s.keys()
EOF
done
for f in fig6_trace.json sa_trace.json; do
  test -s "$OBS_DIR/$f" || { echo "check.sh: empty trace: $f" >&2; exit 1; }
  python3 -c "import json,sys; d=json.load(open(sys.argv[1])); \
assert 'traceEvents' in d" "$OBS_DIR/$f"
done
test -s "$OBS_DIR/fig6_metrics.jsonl.prom" || {
  echo "check.sh: empty Prometheus dump" >&2; exit 1; }
grep -q '^# TYPE ' "$OBS_DIR/fig6_metrics.jsonl.prom"
rm -rf "$OBS_DIR"

# The CLIs must refuse nonsensical knob values instead of misbehaving.
expect_reject() {
  if "$@" > /dev/null 2>&1; then
    echo "check.sh: expected rejection: $*" >&2
    exit 1
  fi
}
expect_reject ./build/streaming_analytics --events=-5
expect_reject ./build/streaming_analytics --events=0
expect_reject ./build/streaming_analytics --events=5x
expect_reject ./build/streaming_analytics --rounds=nope
expect_reject ./build/streaming_analytics --rounds=0
expect_reject ./build/streaming_analytics --async-writers=-1
expect_reject ./build/streaming_analytics --producers=0
expect_reject ./build/fig6_insert_throughput --async-writers=0
expect_reject ./build/fig6_insert_throughput --async-writers=nope
expect_reject ./build/fig6_insert_throughput --batch=-4
expect_reject ./build/fig6_insert_throughput --batch=0
expect_reject ./build/fig6_insert_throughput --batch=5x
expect_reject ./build/table3_insert_scalability --async-writers=-2
expect_reject ./build/fig6_insert_throughput --shards=0
expect_reject ./build/fig6_insert_throughput --shards=nope
expect_reject ./build/fig6_insert_throughput --shards=2x
expect_reject ./build/table3_insert_scalability --shards=0
expect_reject ./build/compare_stores --shards=0
expect_reject ./build/fig6_insert_throughput --ingest-profile=turbo
expect_reject ./build/fig6_insert_throughput --section-slots=0
expect_reject ./build/fig6_insert_throughput --section-slots=5x
expect_reject ./build/fig6_insert_throughput --section-slots=1000
expect_reject ./build/fig6_insert_throughput --section-slots=8388608
expect_reject ./build/fig6_insert_throughput --absorb-min=nope
expect_reject ./build/fig6_insert_throughput --absorb-min=-3
expect_reject ./build/table3_insert_scalability --ingest-profile=bogus
expect_reject ./build/compare_stores --ingest-profile=bogus
expect_reject ./build/streaming_analytics --ingest-profile=bogus
expect_reject ./build/fig7_pr_cc --live-producers=0
expect_reject ./build/fig7_pr_cc --live-producers=nope
expect_reject ./build/fig7_pr_cc --live-producers=-2
expect_reject ./build/table4_analysis_scalability --live-producers=0
expect_reject ./build/fig7_pr_cc --dram-cache=nope
expect_reject ./build/fig7_pr_cc --dram-cache=-8
expect_reject ./build/fig7_pr_cc --eviction=turbo
expect_reject ./build/fig8_bfs_bc --dram-cache=0x
expect_reject ./build/table4_analysis_scalability --eviction=mru
expect_reject ./build/fig7_pr_cc --pm-read-ns=nope
expect_reject ./build/fig7_pr_cc --incremental
expect_reject ./build/table4_analysis_scalability --incremental
expect_reject ./build/fig7_pr_cc --live-ingest --live-pace-ns=abc
expect_reject ./build/fig7_pr_cc --live-ingest --live-pace-ns=-5
expect_reject ./build/table4_analysis_scalability --live-ingest \
  --live-pace-ns=0
expect_reject ./build/fig6_insert_throughput --metrics-interval-ms=0
expect_reject ./build/fig6_insert_throughput --metrics-interval-ms=nope
expect_reject ./build/streaming_analytics --metrics-interval-ms=0
expect_reject ./build/streaming_analytics --metrics-interval-ms=nope
expect_reject ./build/fig7_pr_cc --cold-tier=nope
expect_reject ./build/fig7_pr_cc --cold-pread=maybe
expect_reject ./build/fig7_pr_cc --uring-depth=0
expect_reject ./build/fig7_pr_cc --uring-depth=nope
expect_reject ./build/fig7_pr_cc --uring-depth=-4
expect_reject ./build/fig8_bfs_bc --cold-tier=bogus
expect_reject ./build/fig6_insert_throughput --threads=0
expect_reject ./build/fig6_insert_throughput --threads=nope
expect_reject ./build/fig6_insert_throughput --threads=100000
expect_reject ./build/streaming_analytics --threads=0
expect_reject ./build/streaming_analytics --threads=nope

echo "check.sh: all good"
